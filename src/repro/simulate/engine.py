"""Discrete-event simulation engine with fluid flows.

The engine advances a clock over two kinds of events:

* **timers** — callbacks scheduled at absolute times (compute phases, seek
  latencies, barrier releases);
* **flow completions** — a :class:`~repro.simulate.flows.Flow` finishes when
  its remaining bytes reach zero under the current max-min fair rates.

Rates are re-solved lazily: only when the active flow set changes (a flow
starts, completes or is cancelled).  Between events every flow's
``remaining`` decreases linearly, so the next completion time is exact —
no fixed time step, no numerical integration error beyond float
arithmetic.

The hot path is incremental end to end:

* rates come from a persistent :class:`~repro.simulate.allocator.
  IncrementalAllocator` updated in O(|path|) per flow event (the legacy
  O(Σ|path|)-rebuild :func:`~repro.simulate.flows.allocate_rates` remains
  available as a reference via ``Simulation(allocator="reference")``);
* the next completion comes from a **per-epoch completion cache**: one
  vectorised ``now + remaining/rate`` pass predicts every finish time the
  moment rates change, and the minimum is cached.  The flow set cannot
  change within an epoch (every start/cancel/finish marks the rates
  dirty), so the cached winner stays valid until the next re-solve — a
  completion-time heap degenerates to at most one pop per rebuild, and
  the cache is the zero-overhead special case of it;
* flow progress uses **credit accounting**: each flow's ``remaining`` is
  settled only at rate-epoch boundaries (one fused ``remaining -=
  rate·dt`` per epoch instead of one per event), with an O(1) dict-backed
  flow registry instead of a list.

The dense slot arrays are authoritative for ``remaining``; the ``Flow``
objects are synchronised at observation points (completion, cancellation,
every ``run``/``run(until=...)`` return).  Workloads whose every event
changes the flow set (all the paper's read benchmarks) settle at every
event and reproduce the pre-incremental engine bit for bit (pinned by
``tests/test_sim_golden.py``).
"""

from __future__ import annotations

import heapq
import math
from itertools import count
from typing import Callable

import numpy as np

from .allocator import IncrementalAllocator
from .flows import Flow, allocate_rates
from .perf import SimPerf, wall_clock
from .resources import Resource

#: Completion slack: a flow is done when remaining ≤ REMAINING_EPS bytes.
REMAINING_EPS = 1e-6

_GROW = 64


class Simulation:
    """Event loop owning the clock, timers, resources and active flows."""

    def __init__(self, *, allocator: str = "incremental") -> None:
        """
        Parameters
        ----------
        allocator:
            ``"incremental"`` (default) uses the persistent
            :class:`IncrementalAllocator`; ``"reference"`` re-solves with
            the pure :func:`allocate_rates` on every dirty refresh —
            slower, kept for differential testing.
        """
        if allocator not in ("incremental", "reference"):
            raise ValueError(f"unknown allocator {allocator!r}")
        self.now = 0.0
        self.perf = SimPerf()
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = count()
        self._resources: dict[str, Resource] = {}
        self._alloc: IncrementalAllocator | None = (
            IncrementalAllocator() if allocator == "incremental" else None
        )
        #: O(1) registry: flow -> completion callback, insertion-ordered.
        self._flows: dict[Flow, Callable[[Flow], None]] = {}
        self._dirty = True
        self.completed_flows = 0
        self.events_processed = 0
        # Flow-id slot arrays mirroring the registry.  Ids are recycled
        # through a free list (shared with the allocator, so solve() can
        # scatter rates straight into ``_rate``); freed slots hold the
        # sentinels ``rem = inf, rate = 1`` so the vectorised settle,
        # sweep and completion-prediction passes can run over the whole
        # range without masking — a hole's predicted completion is +inf
        # and its remaining never drains.
        self._flow_at: list[Flow | None] = []
        self._fid_of: dict[Flow, int] = {}
        self._free_ids: list[int] = []
        self._rem = np.full(_GROW, np.inf)
        self._rate = np.ones(_GROW)
        #: simulated time all slots' ``remaining`` values refer to
        self._settled_at = 0.0
        #: rate epoch; bumped on every re-solve, invalidates the prediction
        self._epoch = 0
        self._next_completion: tuple[float, int, Flow] | None = None
        self._pred_epoch = -1
        # cached length-n views of _rem/_rate; rebuilt when the slot count
        # changes (which is also the only time the arrays can reallocate)
        self._nview = -1
        self._rem_v = self._rem[:0]
        self._rate_v = self._rate[:0]

    # -- configuration -------------------------------------------------------

    def add_resource(self, resource: Resource) -> None:
        if resource.name in self._resources:
            raise ValueError(f"duplicate resource {resource.name!r}")
        self._resources[resource.name] = resource
        if self._alloc is not None:
            self._alloc.register(resource.name, resource)

    def add_resources(self, resources: list[Resource]) -> None:
        for r in resources:
            self.add_resource(r)

    def has_resource(self, name: str) -> bool:
        return name in self._resources

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(self._timers, (self.now + delay, next(self._seq), callback))

    def start_flow(
        self,
        size: float,
        path: list[str],
        on_complete: Callable[[Flow], None],
        payload: object = None,
        rate_cap: float | None = None,
    ) -> Flow:
        """Begin a transfer now; ``on_complete(flow)`` fires when it finishes."""
        flow = Flow(size=size, path=tuple(path), payload=payload, rate_cap=rate_cap)
        for r in flow.path:
            if r not in self._resources:
                raise KeyError(f"unknown resource {r!r}")
        self._flows[flow] = on_complete
        if self._free_ids:
            fid = self._free_ids.pop()
        else:
            fid = len(self._flow_at)
            self._flow_at.append(None)
            if fid >= len(self._rem):
                grow = len(self._rem)
                self._rem = np.concatenate([self._rem, np.full(grow, np.inf)])
                self._rate = np.concatenate([self._rate, np.ones(grow)])
        self._fid_of[flow] = fid
        self._flow_at[fid] = flow
        self._rem[fid] = flow.remaining
        # Rate 0 until the next re-solve: the settle pass covering the
        # instant of creation must not move this flow.
        self._rate[fid] = 0.0
        if self._alloc is not None:
            self._alloc.add(flow, fid)
        self._dirty = True
        self.perf.flows_started += 1
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a transfer: no completion callback will fire.

        Used for failure injection (the serving node died mid-transfer).
        """
        if flow not in self._flows:
            raise KeyError("flow is not active")
        # Credit the interval since the last settle point so the caller
        # observes the transfer's true residue.
        self._settle_all()
        del self._flows[flow]
        flow.remaining = float(self._rem[self._fid_of[flow]])
        self._release_fid(flow)
        if self._alloc is not None:
            self._alloc.remove(flow)
        self._dirty = True
        self.perf.flows_cancelled += 1

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self, flow: Flow) -> float:
        """The flow's current max-min fair rate (refreshes if stale)."""
        self._refresh_rates()
        fid = self._fid_of.get(flow)
        return float(self._rate[fid]) if fid is not None else 0.0

    # -- incremental state ---------------------------------------------------

    def _views(self) -> tuple[np.ndarray, np.ndarray]:
        """Length-n views of the slot arrays (cached between grows)."""
        n = len(self._flow_at)
        if n != self._nview:
            self._nview = n
            self._rem_v = self._rem[:n]
            self._rate_v = self._rate[:n]
        return self._rem_v, self._rate_v

    def _release_fid(self, flow: Flow) -> None:
        """Return the flow's slot to the free list, restoring sentinels."""
        fid = self._fid_of.pop(flow)
        self._flow_at[fid] = None
        self._rem[fid] = np.inf
        self._rate[fid] = 1.0
        self._free_ids.append(fid)

    def _settle_all(self) -> None:
        """Credit the elapsed epoch interval to every flow's ``remaining``.

        Must run with the rates that governed ``[_settled_at, now]`` still
        in place — i.e. *before* a re-solve replaces them.
        """
        dt = self.now - self._settled_at
        self._settled_at = self.now
        if dt <= 0.0 or not self._flow_at:
            return
        t0 = wall_clock()
        rem, rate = self._views()
        np.maximum(0.0, rem - rate * dt, out=rem)
        self.perf.settles += 1
        self.perf.flows_settled += len(self._fid_of)
        self.perf.settle_wall += wall_clock() - t0

    def _sync_remaining(self) -> None:
        """Copy the authoritative slot array back onto the Flow objects."""
        for f, fid in self._fid_of.items():
            f.remaining = float(self._rem[fid])

    def _refresh_rates(self) -> None:
        if not self._dirty:
            return
        # The old rates governed the interval up to ``now``; credit it
        # before they are replaced.
        self._settle_all()
        t0 = wall_clock()
        if self._alloc is not None:
            self._alloc.solve(out=self._rate)
            self.perf.solve_iterations += self._alloc.last_iterations
        else:
            rates = allocate_rates(list(self._flows), self._resources)
            rate = self._rate
            fid_of = self._fid_of
            for f, r in rates.items():
                rate[fid_of[f]] = r
        self._dirty = False
        self._epoch += 1
        self.perf.solves += 1
        self.perf.solve_wall += wall_clock() - t0

    # -- event selection -----------------------------------------------------

    def _peek_completion(self) -> tuple[float, int, Flow] | None:
        """The earliest predicted completion, from the epoch's cache.

        One vectorised prediction pass per rate epoch; the ``(time,
        flow_id)``-minimal flow is cached and stays valid for the whole
        epoch because any flow-set change dirties the rates.  Ties on the
        predicted time break by ``flow_id`` — the registry's insertion
        order, matching the pre-incremental engine's scan.
        """
        self._refresh_rates()
        if self._pred_epoch != self._epoch:
            t0 = wall_clock()
            if self._fid_of:
                rem, rate = self._views()
                t = self.now + rem / rate
                i = int(t.argmin())
                tv = t[i]
                ties = (t == tv).nonzero()[0]
                if len(ties) > 1:
                    flow = min(
                        (self._flow_at[j] for j in ties.tolist()),
                        key=lambda f: f.flow_id,
                    )
                else:
                    flow = self._flow_at[i]
                self._next_completion = (float(tv), flow.flow_id, flow)
            else:
                self._next_completion = None
            self._pred_epoch = self._epoch
            self.perf.heap_rebuilds += 1
            self.perf.scan_wall += wall_clock() - t0
        return self._next_completion

    def _pending_event(self) -> tuple[float, float, tuple[float, int, Flow] | None] | None:
        """The next event, computed once: ``(flow_t, timer_t, completion)``."""
        completion = self._peek_completion()
        timer_t = self._timers[0][0] if self._timers else math.inf
        flow_t = completion[0] if completion else math.inf
        if timer_t is math.inf and flow_t is math.inf:
            return None
        return flow_t, timer_t, completion

    def _peek_time(self) -> float:
        event = self._pending_event()
        if event is None:
            return math.inf
        return min(event[0], event[1])

    # -- main loop ----------------------------------------------------------------

    def _process(self, event: tuple[float, float, tuple[float, int, Flow] | None]) -> None:
        flow_t, timer_t, completion = event
        if flow_t <= timer_t:
            assert completion is not None
            t, _, flow = completion
            self.now = t
            # The predicted flow finishes; numerically-simultaneous
            # completions are picked up by the sweep below.
            flow.remaining = 0.0
            self._rem[self._fid_of[flow]] = 0.0
            self._finish(flow)
            self.perf.flow_events += 1
        else:
            self.now = timer_t
            _, _, callback = heapq.heappop(self._timers)
            callback()
            self.perf.timer_events += 1
        self._sweep()
        self.events_processed += 1

    def _sweep(self) -> None:
        """Retire every flow the elapsed interval drained to (near) zero."""
        if not self._fid_of:
            return
        dt = self.now - self._settled_at
        rem, rate = self._views()
        if dt > 0.0:
            current = rem - rate * dt
        else:
            current = rem
        drained = current <= REMAINING_EPS
        if not drained.any():
            return
        hits = sorted(
            ((self._flow_at[i], current[i]) for i in drained.nonzero()[0].tolist()),
            key=lambda item: item[0].flow_id,
        )
        for flow, value in hits:
            if flow not in self._flows:  # a sweep callback cancelled it
                continue
            flow.remaining = max(0.0, float(value))
            self._rem[self._fid_of[flow]] = flow.remaining
            self._finish(flow)

    def step(self) -> bool:
        """Process the next event.  Returns False when nothing is pending."""
        event = self._pending_event()
        if event is None:
            return False
        self._process(event)
        return True

    def _finish(self, flow: Flow) -> None:
        callback = self._flows.pop(flow)
        self._release_fid(flow)
        if self._alloc is not None:
            self._alloc.remove(flow)
        self._dirty = True
        self.completed_flows += 1
        self.perf.flows_finished += 1
        callback(flow)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until no events remain (or ``until``); returns the final clock."""
        events = 0
        while True:
            event = self._pending_event()
            if until is not None:
                next_t = min(event[0], event[1]) if event else math.inf
                if next_t > until:
                    self._refresh_rates()
                    self.now = until
                    self._settle_all()
                    break
            if event is None:
                break
            self._process(event)
            events += 1
            if events > max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway simulation?")
        self._sync_remaining()
        return self.now

