"""Flows and max-min fair rate allocation (progressive filling).

A :class:`Flow` is a transfer of ``size`` bytes across a path of resources.
:func:`allocate_rates` computes the max-min fair allocation: conceptually
every flow's rate rises uniformly ("water filling") until some resource
saturates; flows through that resource freeze at the current level, and the
rest keep rising.  The result is the classic fluid model of TCP-fair sharing
and of a disk head time-slicing among concurrent requests.

The allocator is a pure function so it can be property-tested in isolation:
feasibility (no resource over capacity) and max-min optimality (every flow
is bottlenecked by some saturated resource) are invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Annotated

from ..units import BYTES, BYTES_PER_SEC

if TYPE_CHECKING:  # pragma: no cover
    from .resources import Resource

_flow_ids = count()


def effective_capacity(
    resource: "Resource | float", concurrency: int
) -> Annotated[float, BYTES_PER_SEC]:
    """Effective capacity of a resource entry under ``concurrency`` flows."""
    if isinstance(resource, (int, float)):
        return float(resource)
    return resource.effective_capacity(concurrency)


@dataclass(eq=False, slots=True)
class Flow:
    """A transfer in progress.

    ``remaining`` counts bytes still to move; the engine decrements it as
    simulated time advances.  ``payload`` is an opaque handle the caller uses
    to route the completion callback.  ``fid`` is the engine's slot id while
    the flow is registered in a :class:`~repro.simulate.flowtable.FlowTable`
    (-1 otherwise) — stashed on the flow so the per-event hot path reads an
    attribute instead of hashing the flow into a lookup dict.
    """

    size: Annotated[float, BYTES]
    path: tuple[str, ...]
    payload: object = None
    rate_cap: Annotated[float, BYTES_PER_SEC] | None = None
    flow_id: int = field(default_factory=lambda: next(_flow_ids))
    remaining: Annotated[float, BYTES] = field(init=False)
    fid: int = field(init=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("flow size must be positive")
        if not self.path:
            raise ValueError("flow path must name at least one resource")
        if len(set(self.path)) != len(self.path):
            raise ValueError("flow path has duplicate resources")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ValueError("rate_cap must be positive")
        self.remaining = float(self.size)
        self.fid = -1

    def __hash__(self) -> int:
        return self.flow_id


def allocate_rates(
    flows: list[Flow],
    resources: dict[str, "Resource"] | dict[str, float],
    *,
    stats: dict[str, int] | None = None,
) -> dict[Flow, float]:
    """Max-min fair rates for ``flows`` over ``resources``.

    ``resources`` maps names to :class:`~repro.simulate.resources.Resource`
    objects (whose concurrency penalty shrinks the effective capacity under
    load) or to plain float capacities.  Honours per-flow ``rate_cap``
    values (a capped flow freezes when the water level reaches its cap —
    the standard max-min extension for flows with demand limits).  Raises
    ``KeyError`` if a flow crosses an unknown resource.  At least one flow
    freezes per iteration, so the loop runs at most F times.

    ``stats``, when given, receives ``{"iterations": <water-filling loop
    count>}`` — instrumentation only, it never alters the allocation.
    """
    if not flows:
        if stats is not None:
            stats["iterations"] = 0
        return {}
    users: dict[str, list[Flow]] = {}
    for f in flows:
        for r in f.path:
            if r not in resources:
                raise KeyError(f"flow crosses unknown resource {r!r}")
            users.setdefault(r, []).append(f)

    capacities = {
        r: effective_capacity(resources[r], len(us)) for r, us in users.items()
    }
    free = dict(capacities)
    # Incremental bookkeeping (the hot loop of the whole simulator): the
    # number of unfrozen flows per resource is maintained on freeze events
    # instead of being recounted every iteration.
    unfrozen_count = {r: len(us) for r, us in users.items()}
    unfrozen: set[Flow] = set(flows)
    # (cap, flow) pairs so the capped path never re-proves rate_cap is not
    # None; sorted on the cap alone — Flow defines no ordering, and the
    # stable sort keeps submission order for bit-identical cap ties.
    capped: list[tuple[float, Flow]] = sorted(
        ((f.rate_cap, f) for f in flows if f.rate_cap is not None),
        key=lambda pair: pair[0],
    )
    capped_idx = 0
    level = 0.0
    iterations = 0
    rates: dict[Flow, float] = {}

    def freeze(f: Flow, rate: float) -> None:
        unfrozen.discard(f)
        rates[f] = rate
        for r in f.path:
            unfrozen_count[r] -= 1

    while unfrozen:
        iterations += 1
        # Headroom: how much further the water level can rise before some
        # resource saturates or some flow hits its rate cap.
        delta = None
        for r, k in unfrozen_count.items():
            if k == 0:
                continue
            room = free[r] / k
            if delta is None or room < delta:
                delta = room
        while capped_idx < len(capped) and capped[capped_idx][1] not in unfrozen:
            capped_idx += 1
        if capped_idx < len(capped):
            room = capped[capped_idx][0] - level
            if delta is None or room < delta:
                delta = room
        assert delta is not None  # every unfrozen flow uses some resource
        delta = max(delta, 0.0)
        level += delta
        saturated: list[str] = []
        for r, k in unfrozen_count.items():
            if k == 0:
                continue
            free[r] -= delta * k
            if free[r] <= 1e-9 * capacities[r]:
                saturated.append(r)
        froze_any = False
        for r in saturated:
            for f in users[r]:
                if f in unfrozen:
                    freeze(f, level)
                    froze_any = True
        while capped_idx < len(capped):
            cap, f = capped[capped_idx]
            if f not in unfrozen:
                capped_idx += 1
                continue
            if level >= cap - 1e-12:
                # Freeze at the cap, releasing the flow's resource claims so
                # the remaining flows can grow past it.
                freeze(f, cap)
                capped_idx += 1
                froze_any = True
            else:
                break
        # Guard against float underflow stalling the loop.
        if not froze_any:
            for f in list(unfrozen):  # opass: alloc-ok -- terminal guard, runs once
                freeze(f, level)
    if stats is not None:
        stats["iterations"] = iterations
    return rates


def verify_allocation(
    flows: list[Flow],
    resources: dict[str, "Resource"] | dict[str, float],
    rates: dict[Flow, float],
    *,
    tol: float = 1e-6,
) -> None:
    """Assert feasibility + max-min optimality of an allocation (for tests).

    Feasibility: per-resource load ≤ effective capacity (+tol).  Max-min:
    every flow crosses at least one saturated resource (its bottleneck) or
    sits at its own rate cap — otherwise its rate could rise without
    hurting anyone.
    """
    load: dict[str, float] = {}
    concurrency: dict[str, int] = {}
    for f in flows:
        for r in f.path:
            load[r] = load.get(r, 0.0) + rates[f]
            concurrency[r] = concurrency.get(r, 0) + 1
    capacities = {r: effective_capacity(resources[r], concurrency[r]) for r in load}
    for r, used in load.items():
        cap = capacities[r]
        if used > cap * (1 + tol):
            raise AssertionError(f"resource {r} over capacity: {used} > {cap}")
    for f in flows:
        capped = f.rate_cap is not None and rates[f] >= f.rate_cap * (1 - 1e-3)
        bottlenecked = any(
            load[r] >= capacities[r] * (1 - 1e-3) for r in f.path
        )
        if not (bottlenecked or capped):
            raise AssertionError(f"flow {f.flow_id} has no saturated resource or cap")
