"""Read-cost composition: latency + resource path for one chunk read.

A chunk read resolved by the file system (:class:`repro.dfs.ReadPlan`)
becomes a fixed positioning latency followed by a fluid transfer:

* local read — seek latency, then a flow over the serving disk;
* remote read — seek + remote (connect/RTT) latency, then a flow over the
  serving disk, the server's NIC egress and the reader's NIC ingress.

This mirrors the paper's observation that remote reads are intrinsically
slower and, more importantly, contend on the server's disk and NIC when a
node serves many requests at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfs.cluster import ClusterSpec
from ..dfs.filesystem import ReadPlan
from ..units import Bytes, BytesPerSec, Seconds
from .resources import local_read_path, remote_read_path


@dataclass(frozen=True, slots=True)
class ReadCost:
    """Latency, transfer path, and per-stream ceiling of one resolved read."""

    latency: Seconds
    path: tuple[str, ...]
    size: Bytes
    rate_cap: BytesPerSec | None


def read_cost(plan: ReadPlan, spec: ClusterSpec) -> ReadCost:
    """Latency + flow path for a resolved read plan.

    Remote reads additionally carry the cluster's per-stream throughput
    ceiling (one TCP stream through the DataNode transfer protocol).
    """
    if plan.is_local:
        return ReadCost(
            latency=spec.seek_latency,
            path=tuple(local_read_path(plan.server_node)),
            size=plan.chunk.size,
            rate_cap=None,
        )
    if spec.rack_uplink_bw is not None:
        path = remote_read_path(
            plan.server_node,
            plan.reader_node,
            server_rack=spec.rack_of(plan.server_node),
            reader_rack=spec.rack_of(plan.reader_node),
        )
    else:
        path = remote_read_path(plan.server_node, plan.reader_node)
    return ReadCost(
        latency=spec.seek_latency + spec.remote_latency,
        path=tuple(path),
        size=plan.chunk.size,
        rate_cap=spec.remote_stream_bw,
    )


def uncontended_read_time(plan: ReadPlan, spec: ClusterSpec) -> Seconds:
    """The read time with no competing traffic (lower bound).

    Local: latency + size / disk_bw.  Remote: the bottleneck is the minimum
    of the disk, the two NIC directions and the per-stream ceiling.
    """
    cost = read_cost(plan, spec)
    if plan.is_local:
        bw = spec.node(plan.server_node).disk_bw
    else:
        bw = min(
            spec.node(plan.server_node).disk_bw,
            spec.node(plan.server_node).nic_bw,
            spec.node(plan.reader_node).nic_bw,
            spec.remote_stream_bw,
        )
        if (
            spec.rack_uplink_bw is not None
            and spec.rack_of(plan.server_node) != spec.rack_of(plan.reader_node)
        ):
            bw = min(bw, spec.rack_uplink_bw)
    return cost.latency + cost.size / bw
