"""Workload generators for the paper's benchmarks and applications."""

from .generators import (
    gene_database,
    motivating_dataset,
    multi_input_datasets,
    paraview_multiblock_series,
    single_data_workload,
)

__all__ = [
    "gene_database",
    "motivating_dataset",
    "multi_input_datasets",
    "paraview_multiblock_series",
    "single_data_workload",
]
