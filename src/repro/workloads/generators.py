"""Dataset and workload generators for the paper's experiments.

All generators are pure functions of their arguments (sizes are
deterministic; randomness, where any, comes from an explicit RNG), so every
benchmark run is reproducible.
"""

from __future__ import annotations

import numpy as np

from ..dfs.chunk import DEFAULT_CHUNK_SIZE, MB, Dataset, dataset_from_sizes, uniform_dataset


def single_data_workload(
    num_processes: int,
    chunks_per_process: int = 10,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name: str = "bench",
) -> Dataset:
    """The §V-A1 benchmark dataset: ~10 equal chunk files per process.

    ("Our test dataset contains approximately ten chunk files for every
    process.  Note that this is an arbitrary ratio…")
    """
    if num_processes <= 0 or chunks_per_process <= 0:
        raise ValueError("counts must be positive")
    return uniform_dataset(name, num_processes * chunks_per_process, chunk_size)


def multi_input_datasets(
    num_tasks: int,
    input_sizes_mb: tuple[int, ...] = (30, 20, 10),
    name_prefix: str = "species",
) -> list[Dataset]:
    """The §V-A2 multi-data workload.

    "Each task includes three inputs, one 30 MB data input, one 20 MB input,
    and one 10 MB input.  These three inputs belong to three different data
    sets."  Returns one dataset per input size, each with ``num_tasks``
    files.
    """
    if num_tasks <= 0:
        raise ValueError("num_tasks must be positive")
    if not input_sizes_mb or any(s <= 0 for s in input_sizes_mb):
        raise ValueError("input sizes must be positive")
    datasets = []
    for i, size_mb in enumerate(input_sizes_mb):
        datasets.append(
            dataset_from_sizes(
                f"{name_prefix}-{i}",
                [size_mb * MB] * num_tasks,
            )
        )
    return datasets


def gene_database(
    num_fragments: int,
    fragment_size: int = DEFAULT_CHUNK_SIZE,
    name: str = "genedb",
) -> Dataset:
    """An mpiBLAST-style formatted database: equal-size fragments.

    mpiBLAST pre-partitions the sequence database into fragments; each
    comparison task scans one fragment.
    """
    return uniform_dataset(name, num_fragments, fragment_size)


def paraview_multiblock_series(
    num_datasets: int,
    *,
    mean_size_mb: float = 56.0,
    jitter_mb: float = 4.0,
    rng: np.random.Generator | None = None,
    name: str = "pdb",
) -> Dataset:
    """A ParaView MultiBlock file series (§V-B).

    The paper's Protein-Data-Bank-derived test set: 640 datasets, ~26 GB
    total, each I/O operation "about 56 MB in size".  Mild size jitter
    mimics the duplicated-with-small-revision datasets they built.
    """
    if num_datasets <= 0:
        raise ValueError("num_datasets must be positive")
    if mean_size_mb <= 0 or jitter_mb < 0:
        raise ValueError("sizes must be positive")
    if jitter_mb >= mean_size_mb:
        raise ValueError("jitter must be below the mean size")
    rng = rng if rng is not None else np.random.default_rng(0)  # opass: ignore[OPS001] -- documented default: rng=None means the fixed paper workload (seed 0), callers inject a Generator for variation
    sizes = (mean_size_mb + rng.uniform(-jitter_mb, jitter_mb, num_datasets)) * MB
    return dataset_from_sizes(name, [int(s) for s in sizes])


def motivating_dataset(num_chunks: int = 128, name: str = "intro") -> Dataset:
    """The Figure-1 dataset: 128 chunks of ~64 MB on a 64-node cluster."""
    return uniform_dataset(name, num_chunks)
