"""MultiBlock meta-file serialisation (a ``.vtm``-like XML index).

ParaView's composite readers start from an index file: "a meta-file is
read as an index file, which points to a series of VTK XML data files
constituting the subsets.  The series of data files are either PolyData,
ImageData, RectilinearGrid, UnstructuredGrid or StructuredGrid."

This module writes and parses that index in the VTK XML MultiBlock shape
(``<VTKFile type="vtkMultiBlockDataSet">`` with one ``<DataSet>`` element
per piece), so the ParaView application model can round-trip a real file
instead of holding the piece list in memory.  The parser is a small
hand-rolled XML reader for exactly this schema — intentionally strict, it
rejects anything it does not understand.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from xml.etree import ElementTree

from ..dfs.chunk import Dataset
from .paraview import MultiBlockMetaFile

#: Piece types ParaView's composite reader accepts (paper §V-B).
VTK_DATASET_TYPES = (
    "PolyData",
    "ImageData",
    "RectilinearGrid",
    "UnstructuredGrid",
    "StructuredGrid",
)

_EXTENSION_OF = {
    "PolyData": "vtp",
    "ImageData": "vti",
    "RectilinearGrid": "vtr",
    "UnstructuredGrid": "vtu",
    "StructuredGrid": "vts",
}


@dataclass(frozen=True)
class MultiBlockPiece:
    """One ``<DataSet>`` entry: index, piece type and file reference."""

    index: int
    dataset_type: str
    file: str

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("piece index must be non-negative")
        if self.dataset_type not in VTK_DATASET_TYPES:
            raise ValueError(f"unknown VTK dataset type {self.dataset_type!r}")
        if not self.file:
            raise ValueError("piece needs a file reference")


def meta_to_xml(
    meta: MultiBlockMetaFile,
    *,
    dataset_type: str = "PolyData",
) -> str:
    """Serialise a meta-file to ``.vtm``-style XML."""
    if dataset_type not in VTK_DATASET_TYPES:
        raise ValueError(f"unknown VTK dataset type {dataset_type!r}")
    ext = _EXTENSION_OF[dataset_type]
    lines = [
        '<?xml version="1.0"?>',
        '<VTKFile type="vtkMultiBlockDataSet" version="1.0">',
        "  <vtkMultiBlockDataSet>",
    ]
    for i, piece in enumerate(meta.pieces):
        safe = piece.replace("&", "&amp;").replace("<", "&lt;").replace('"', "&quot;")
        lines.append(
            f'    <DataSet index="{i}" type="{dataset_type}" file="{safe}.{ext}"/>'
        )
    lines.append("  </vtkMultiBlockDataSet>")
    lines.append("</VTKFile>")
    return "\n".join(lines) + "\n"


def write_meta_file(
    meta: MultiBlockMetaFile,
    path: str | Path,
    *,
    dataset_type: str = "PolyData",
) -> Path:
    """Write the index to disk; returns the path."""
    path = Path(path)
    path.write_text(meta_to_xml(meta, dataset_type=dataset_type))
    return path


_PIECE_SUFFIX = re.compile(r"\.(vtp|vti|vtr|vtu|vts)$")


def parse_meta_xml(text: str, *, dataset_name: str = "series") -> MultiBlockMetaFile:
    """Parse ``.vtm``-style XML back into a :class:`MultiBlockMetaFile`.

    Strict: the root must be a ``VTKFile`` of type ``vtkMultiBlockDataSet``,
    pieces must carry ``index``/``type``/``file`` attributes, indices must
    be 0..n-1 in order, and piece types must be known.
    """
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise ValueError(f"malformed meta-file XML: {exc}") from exc
    if root.tag != "VTKFile" or root.get("type") != "vtkMultiBlockDataSet":
        raise ValueError("not a vtkMultiBlockDataSet VTKFile")
    block = root.find("vtkMultiBlockDataSet")
    if block is None:
        raise ValueError("missing <vtkMultiBlockDataSet> element")
    pieces: list[MultiBlockPiece] = []
    for elem in block:
        if elem.tag != "DataSet":
            raise ValueError(f"unexpected element <{elem.tag}> in meta-file")
        index = elem.get("index")
        dtype = elem.get("type")
        file_ref = elem.get("file")
        if index is None or dtype is None or file_ref is None:
            raise ValueError("DataSet element missing index/type/file")
        pieces.append(MultiBlockPiece(index=int(index), dataset_type=dtype, file=file_ref))
    if [p.index for p in pieces] != list(range(len(pieces))):
        raise ValueError("piece indices must be 0..n-1 in order")
    names = tuple(_PIECE_SUFFIX.sub("", p.file) for p in pieces)
    return MultiBlockMetaFile(dataset_name=dataset_name, pieces=names)


def read_meta_file(path: str | Path, *, dataset_name: str | None = None) -> MultiBlockMetaFile:
    """Read and parse a meta-file from disk."""
    path = Path(path)
    name = dataset_name if dataset_name is not None else path.stem
    return parse_meta_xml(path.read_text(), dataset_name=name)


def meta_round_trip_equal(a: MultiBlockMetaFile, b: MultiBlockMetaFile) -> bool:
    """Piece-list equality (names only; the dataset label may differ)."""
    return a.pieces == b.pieces


def meta_for_dataset(dataset: Dataset) -> MultiBlockMetaFile:
    """Convenience: the meta-file indexing a stored series dataset."""
    return MultiBlockMetaFile.from_dataset(dataset)
