"""Application models from the paper: ParaView, mpiBLAST, multi-input tasks."""

from .mpiblast import (
    BlastReport,
    FragmentResult,
    MpiBlastConfig,
    MpiBlastProtocol,
    MpiBlastRun,
    replay_protocol,
)
from .multiblock_io import (
    VTK_DATASET_TYPES,
    MultiBlockPiece,
    meta_to_xml,
    parse_meta_xml,
    read_meta_file,
    write_meta_file,
)
from .multi_input import MultiInputComparison, MultiInputOutcome
from .paraview import (
    MultiBlockMetaFile,
    ParaViewConfig,
    ParaViewMultiBlockReader,
    ParaViewResult,
)

__all__ = [
    "BlastReport",
    "FragmentResult",
    "MpiBlastConfig",
    "MpiBlastProtocol",
    "MpiBlastRun",
    "replay_protocol",
    "MultiBlockPiece",
    "VTK_DATASET_TYPES",
    "meta_to_xml",
    "parse_meta_xml",
    "read_meta_file",
    "write_meta_file",
    "MultiBlockMetaFile",
    "MultiInputComparison",
    "MultiInputOutcome",
    "ParaViewConfig",
    "ParaViewMultiBlockReader",
    "ParaViewResult",
]
