"""mpiBLAST-style dynamic gene-comparison application (paper §IV-D, §V-A3).

mpiBLAST formats a sequence database into fragments; a master process hands
fragment-scan tasks to slave processes as they go idle, because per-task
compute times are irregular ("the execution times of data processing tasks
could vary greatly and are difficult to predict").  Stock mpiBLAST's master
ignores data placement; Opass gives the master guided per-worker lists.

The §V-A3 benchmark models the irregular compute with a random service
time, exactly as the paper does ("issue data requests via a random policy
to simulate the irregular computation patterns").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.baselines import DefaultDynamicPolicy
from ..core.bipartite import ProcessPlacement, graph_from_filesystem
from ..core.dynamic import plan_dynamic
from ..core.single_data import optimize_single_data
from ..core.tasks import Task, tasks_from_dataset
from ..dfs.chunk import Dataset
from ..dfs.filesystem import DistributedFileSystem
from ..parallel.comm import SimComm
from ..parallel.master_worker import (
    MasterWorkerOutcome,
    irregular_compute_model,
    run_master_worker,
)

#: Message tags of the mpiBLAST-style control protocol.
TAG_QUERY = 1
TAG_ASSIGN = 2
TAG_RESULT = 3
TAG_DONE = 4


@dataclass(frozen=True)
class MpiBlastConfig:
    """Workload shape of one gene-comparison run."""

    compute_mean: float = 0.5
    compute_cv: float = 0.8
    dispatch_mode: str = "random"  # the default master's policy

    def __post_init__(self) -> None:
        if self.compute_mean < 0 or self.compute_cv < 0:
            raise ValueError("compute model parameters must be non-negative")
        if self.dispatch_mode not in ("random", "fifo"):
            raise ValueError(f"unknown dispatch mode {self.dispatch_mode!r}")


class MpiBlastRun:
    """One master/worker execution over a formatted gene database."""

    def __init__(
        self,
        fs: DistributedFileSystem,
        placement: ProcessPlacement,
        database: Dataset,
        *,
        config: MpiBlastConfig | None = None,
        use_opass: bool = False,
        opass_seed: int | np.random.Generator = 0,
    ) -> None:
        self.fs = fs
        self.placement = placement
        self.database = database
        self.config = config if config is not None else MpiBlastConfig()
        self.use_opass = use_opass
        self._opass_seed = opass_seed
        self.tasks: list[Task] = tasks_from_dataset(database)

    def build_policy(self, *, seed: int | np.random.Generator = 0):
        """The master's dispatch policy (default vs Opass guided lists)."""
        if self.use_opass:
            graph = graph_from_filesystem(self.fs, self.tasks, self.placement)
            matched = optimize_single_data(graph, seed=self._opass_seed)
            return plan_dynamic(graph, matched.assignment)
        return DefaultDynamicPolicy(
            len(self.tasks), mode=self.config.dispatch_mode, seed=seed
        )

    def execute(
        self,
        *,
        seed: int = 0,
    ) -> MasterWorkerOutcome:
        """Run the comparison; same compute-time stream for any policy.

        The compute model is seeded independently of the dispatch policy so
        baseline and Opass runs face identical task service times.
        """
        policy = self.build_policy(seed=seed + 1)
        compute = irregular_compute_model(
            self.config.compute_mean, cv=self.config.compute_cv, seed=seed + 2
        )
        return run_master_worker(
            self.fs,
            self.placement,
            self.tasks,
            policy,
            compute_time=compute,
            seed=seed,
        )


@dataclass(frozen=True, slots=True)
class FragmentResult:
    """One fragment scan's outcome reported back to the master."""

    task_id: int
    worker: int
    hits: int
    scan_time: float


@dataclass
class BlastReport:
    """The master's merged view of a whole comparison run."""

    results: list[FragmentResult]
    total_hits: int
    messages_sent: int

    @property
    def fragments_scanned(self) -> int:
        return len(self.results)


class MpiBlastProtocol:
    """The control-plane message flow of mpiBLAST over :class:`SimComm`.

    mpiBLAST's master broadcasts the query, hands fragment assignments to
    idle workers, and merges per-fragment hit lists.  The data plane (the
    fragment reads) runs on the flow simulator; this class replays the
    matching control messages so application logic exercises the same
    send/recv/broadcast pattern the real MPI program uses.
    """

    def __init__(self, comm: SimComm, *, master_rank: int = 0) -> None:
        if not 0 <= master_rank < comm.size:
            raise ValueError("master rank out of range")
        self.comm = comm
        self.master_rank = master_rank
        self.messages_sent = 0

    def broadcast_query(self, query: str) -> None:
        """Master announces the query sequence batch to every worker."""
        self.comm.bcast({"tag": TAG_QUERY, "query": query}, root=self.master_rank)
        self.messages_sent += self.comm.size - 1

    def assign_fragment(self, worker: int, task_id: int) -> None:
        self.comm.send(task_id, worker, source=self.master_rank, tag=TAG_ASSIGN)
        self.messages_sent += 1

    def worker_receive_assignment(self, worker: int) -> int:
        return self.comm.recv(rank=worker, source=self.master_rank, tag=TAG_ASSIGN)

    def report_result(self, result: FragmentResult) -> None:
        self.comm.send(result, self.master_rank, source=result.worker, tag=TAG_RESULT)
        self.messages_sent += 1

    def master_collect(self) -> FragmentResult:
        return self.comm.recv(rank=self.master_rank, tag=TAG_RESULT)

    def shutdown(self) -> None:
        """Master tells every worker the run is over."""
        for worker in range(self.comm.size):
            if worker != self.master_rank:
                self.comm.send(None, worker, source=self.master_rank, tag=TAG_DONE)
                self.messages_sent += 1


def replay_protocol(
    outcome: MasterWorkerOutcome,
    placement: ProcessPlacement,
    *,
    query: str = "query-batch-0",
    hits_per_mb: float = 0.5,
    seed: int | np.random.Generator = 0,
) -> BlastReport:
    """Replay the control messages of a finished data-plane run.

    Walks the run's read records in completion order and drives the full
    protocol — broadcast, per-fragment assign, per-fragment result, final
    shutdown — through a fresh :class:`SimComm`.  Hit counts are sampled
    Poisson(``hits_per_mb`` × fragment MB), the standard null model for
    alignment counts over random sequence data.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    comm = SimComm(placement)
    protocol = MpiBlastProtocol(comm)
    protocol.broadcast_query(query)
    # Workers consume the broadcast.
    for rank in range(comm.size):
        if rank != protocol.master_rank:
            assert comm.recv(rank=rank, source=protocol.master_rank)["tag"] == TAG_QUERY

    results: list[FragmentResult] = []
    for rec in sorted(outcome.result.records, key=lambda r: (r.end_time, r.seq)):
        protocol.assign_fragment(rec.rank, rec.task_id)
        got = protocol.worker_receive_assignment(rec.rank)
        size_mb = 64.0  # fragments are chunk-sized in the §V-A3 workload
        result = FragmentResult(
            task_id=got,
            worker=rec.rank,
            hits=int(rng.poisson(hits_per_mb * size_mb)),
            scan_time=rec.duration,
        )
        protocol.report_result(result)
        results.append(protocol.master_collect())
    protocol.shutdown()
    for rank in range(comm.size):
        if rank != protocol.master_rank:
            comm.recv(rank=rank, tag=TAG_DONE)

    return BlastReport(
        results=results,
        total_hits=sum(r.hits for r in results),
        messages_sent=protocol.messages_sent,
    )
