"""ParaView MultiBlock rendering model (paper §V-B, Figure 12).

ParaView renders a MultiBlock file series step by step: a meta-file lists
the sub-dataset files; at every rendering step each parallel *data server*
reads its assigned piece (one VTK XML file, ~56 MB here), parses it, and the
servers synchronise to render/composite the frame.

The piece assignment is what Opass replaces.  Stock ParaView's
``vtkXMLCompositeDataReader.ReadXMLData()`` gives data server ``i`` the
pieces with indices in ``[i·n/m, (i+1)·n/m)`` — oblivious to where HDFS put
the data.  "Opass is added into the vtkXMLCompositeDataReader class and
called in the function ReadXMLData(), which assigns the data pieces to each
data server after processing the meta-file."

The per-call ``vtkFileSeriesReader`` time the paper traces is read + XML
parse; the render/composite phase is a per-step barrier cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..core.baselines import rank_interval_assignment
from ..core.bipartite import ProcessPlacement, graph_from_filesystem
from ..core.single_data import optimize_single_data
from ..core.tasks import Task, tasks_from_dataset
from ..dfs.chunk import MB, Dataset
from ..dfs.filesystem import DistributedFileSystem
from ..simulate.runner import ParallelReadRun, RunResult, StaticSource


@dataclass(frozen=True)
class MultiBlockMetaFile:
    """The index file of a MultiBlock series: an ordered list of piece files.

    "a meta-file is read as an index file, which points to a series of VTK
    XML data files constituting the subsets."
    """

    dataset_name: str
    pieces: tuple[str, ...]

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "MultiBlockMetaFile":
        return cls(dataset.name, tuple(f.name for f in dataset.files))

    @property
    def num_pieces(self) -> int:
        return len(self.pieces)


@dataclass(frozen=True)
class ParaViewConfig:
    """Cost model constants of the rendering pipeline.

    ``parse_bw`` is the VTK XML parse rate (the reason a 56 MB read "call"
    takes ~3 s even when fully local); ``render_time_per_step`` is the
    rendering/compositing barrier cost per time step.
    """

    parse_bw: float = 27 * MB
    render_time_per_step: float = 6.5

    def __post_init__(self) -> None:
        if self.parse_bw <= 0:
            raise ValueError("parse_bw must be positive")
        if self.render_time_per_step < 0:
            raise ValueError("render_time_per_step must be non-negative")


@dataclass
class ParaViewResult:
    """Per-call reader times plus end-to-end execution time."""

    run: RunResult
    reader_call_times: np.ndarray  # read + parse per vtkFileSeriesReader call
    total_execution_time: float
    steps: int

    @property
    def avg_call_time(self) -> float:
        return float(self.reader_call_times.mean()) if self.reader_call_times.size else 0.0

    @property
    def std_call_time(self) -> float:
        return float(self.reader_call_times.std()) if self.reader_call_times.size else 0.0

    @property
    def min_call_time(self) -> float:
        return float(self.reader_call_times.min()) if self.reader_call_times.size else 0.0

    @property
    def max_call_time(self) -> float:
        return float(self.reader_call_times.max()) if self.reader_call_times.size else 0.0


class ParaViewMultiBlockReader:
    """The assignment + execution half of ``vtkXMLCompositeDataReader``.

    ``use_opass=False`` reproduces stock ParaView's rank-interval piece
    assignment; ``use_opass=True`` is the paper's patched reader that asks
    the matching optimizer for a locality-aware assignment after processing
    the meta-file.
    """

    def __init__(
        self,
        fs: DistributedFileSystem,
        placement: ProcessPlacement,
        series: Dataset,
        *,
        config: ParaViewConfig | None = None,
        use_opass: bool = False,
        opass_seed: int | np.random.Generator = 0,
    ) -> None:
        self.fs = fs
        self.placement = placement
        self.series = series
        self.meta = MultiBlockMetaFile.from_dataset(series)
        self.config = config if config is not None else ParaViewConfig()
        self.use_opass = use_opass
        self._opass_seed = opass_seed
        self.tasks: list[Task] = tasks_from_dataset(series)

    def read_xml_data(self) -> Assignment:
        """Assign pieces to data servers (the ReadXMLData() hook point)."""
        if self.use_opass:
            graph = graph_from_filesystem(self.fs, self.tasks, self.placement)
            return optimize_single_data(graph, seed=self._opass_seed).assignment
        return rank_interval_assignment(len(self.tasks), self.placement.num_processes)

    def _parse_time(self, rank: int, task_id: int, rng: np.random.Generator) -> float:
        task = self.tasks[task_id]
        size = sum(self.fs.chunk(cid).size for cid in task.inputs)
        return size / self.config.parse_bw

    def render(self, *, seed: int | np.random.Generator = 0) -> ParaViewResult:
        """Run the full pipeline: per-step read/parse + render barriers.

        Every data server handles one piece per rendering step; steps are
        barrier-synchronised with the render/composite cost appended — the
        reason "the varied I/O time prolongs the overall execution".
        """
        assignment = self.read_xml_data()
        run = ParallelReadRun(
            self.fs,
            self.placement,
            self.tasks,
            StaticSource(assignment),
            compute_time=self._parse_time,
            barrier=True,
            barrier_compute_time=self.config.render_time_per_step,
            seed=seed,
        )
        result = run.run()
        sizes = {
            t.task_id: sum(self.fs.chunk(cid).size for cid in t.inputs)
            for t in self.tasks
        }
        # A reader call covers the piece's read plus its XML parse.
        calls = np.array(
            [
                rec.duration + sizes[rec.task_id] / self.config.parse_bw
                for rec in sorted(result.records, key=lambda r: (r.end_time, r.seq))
            ]
        )
        steps = max(
            (len(ts) for ts in assignment.tasks_of.values()), default=0
        )
        return ParaViewResult(
            run=result,
            reader_call_times=calls,
            total_execution_time=result.makespan,
            steps=steps,
        )
