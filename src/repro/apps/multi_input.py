"""Multi-input comparison tasks (paper §II-B, §IV-C, §V-A2).

The paper's motivating multi-data example: "to compare the genome sequences
of humans, mice and chimpanzees, a single task needs to read three inputs"
that live in three different datasets and may sit on different nodes.  This
app builds that workload, assigns tasks either naively (rank intervals) or
with Algorithm 1, and executes it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment, locality_fraction
from ..core.baselines import rank_interval_assignment
from ..core.bipartite import LocalityGraph, ProcessPlacement, graph_from_filesystem
from ..core.multi_data import optimize_multi_data
from ..core.tasks import Task, tasks_from_datasets
from ..dfs.chunk import Dataset
from ..dfs.filesystem import DistributedFileSystem
from ..simulate.runner import ParallelReadRun, RunResult, StaticSource


@dataclass(frozen=True)
class MultiInputOutcome:
    """A multi-data run plus its planned locality."""

    assignment: Assignment
    result: RunResult
    planned_locality: float


class MultiInputComparison:
    """A genome-comparison-style workload over several input datasets."""

    def __init__(
        self,
        fs: DistributedFileSystem,
        placement: ProcessPlacement,
        datasets: list[Dataset],
        *,
        use_opass: bool = False,
    ) -> None:
        if not datasets:
            raise ValueError("need at least one input dataset")
        self.fs = fs
        self.placement = placement
        self.datasets = datasets
        self.use_opass = use_opass
        self.tasks: list[Task] = tasks_from_datasets(datasets)
        self._graph: LocalityGraph | None = None

    @property
    def graph(self) -> LocalityGraph:
        if self._graph is None:
            self._graph = graph_from_filesystem(self.fs, self.tasks, self.placement)
        return self._graph

    def invalidate_graph(self) -> None:
        """Drop the cached locality graph after the layout changed
        (rebalance, reconstruction, node failure)."""
        self._graph = None

    def assign(self) -> Assignment:
        """Task → process mapping: Algorithm 1 or the oblivious baseline."""
        if self.use_opass:
            return optimize_multi_data(self.graph).assignment
        return rank_interval_assignment(len(self.tasks), self.placement.num_processes)

    def execute(
        self,
        *,
        compute_time: float | None = None,
        seed: int | np.random.Generator = 0,
    ) -> MultiInputOutcome:
        """Run the comparison: each task reads its inputs back to back."""
        assignment = self.assign()
        run = ParallelReadRun(
            self.fs,
            self.placement,
            self.tasks,
            StaticSource(assignment),
            compute_time=compute_time,
            seed=seed,
        )
        result = run.run()
        return MultiInputOutcome(
            assignment=assignment,
            result=result,
            planned_locality=locality_fraction(assignment, self.graph),
        )
