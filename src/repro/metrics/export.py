"""Result export: CSV and JSON serialisation of runs and figure series.

The benchmark harness prints paper-style tables; downstream analysis
(plotting, regression tracking) wants machine-readable artifacts.  These
helpers serialise :class:`~repro.simulate.runner.RunResult` records and
arbitrary labelled series without any third-party dependency.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping

from ..simulate.runner import RunResult

#: Columns of the per-read CSV, in order.
READ_RECORD_FIELDS = (
    "seq",
    "rank",
    "task_id",
    "chunk",
    "server_node",
    "reader_node",
    "local",
    "issue_time",
    "end_time",
    "duration",
)


def records_to_rows(result: RunResult) -> list[dict[str, object]]:
    """Per-read dictionaries in completion order."""
    rows = []
    for rec in sorted(result.records, key=lambda r: (r.end_time, r.seq)):
        rows.append(
            {
                "seq": rec.seq,
                "rank": rec.rank,
                "task_id": rec.task_id,
                "chunk": str(rec.chunk),
                "server_node": rec.server_node,
                "reader_node": rec.reader_node,
                "local": rec.local,
                "issue_time": rec.issue_time,
                "end_time": rec.end_time,
                "duration": rec.duration,
            }
        )
    return rows


def write_records_csv(result: RunResult, path: str | Path) -> Path:
    """Dump every read record to a CSV file; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=READ_RECORD_FIELDS)
        writer.writeheader()
        for row in records_to_rows(result):
            writer.writerow(row)
    return path


def run_summary(result: RunResult, *, num_nodes: int | None = None) -> dict[str, object]:
    """A JSON-ready summary of one run."""
    stats = result.io_stats()
    summary: dict[str, object] = {
        "makespan": result.makespan,
        "tasks_completed": result.tasks_completed,
        "reads": len(result.records),
        "read_retries": result.read_retries,
        "local_bytes": result.local_bytes,
        "remote_bytes": result.remote_bytes,
        "locality_fraction": result.locality_fraction,
        "io_time": stats,
    }
    if num_nodes is not None:
        summary["served_mb_per_node"] = (
            result.served_bytes_array(num_nodes) / 1e6
        ).tolist()
    if result.sim_perf is not None:
        summary["sim_perf"] = perf_summary(result.sim_perf)
    if result.sched_perf is not None:
        summary["sched_perf"] = sched_perf_summary(result.sched_perf)
    return summary


def perf_summary(perf: "Mapping[str, float] | object") -> dict[str, float]:
    """Normalise a :class:`~repro.simulate.perf.SimPerf` (or its snapshot
    dict) into the JSON-ready form embedded in run summaries and the
    ``BENCH_sim.json`` trajectory file.  Derived ratios are added so a
    regression shows up as a number, not a diff of raw counters."""
    snap = dict(perf.snapshot()) if hasattr(perf, "snapshot") else dict(perf)
    events = snap.get("flow_events", 0) + snap.get("timer_events", 0)
    solves = snap.get("solves", 0)
    snap["events"] = events
    snap["iterations_per_solve"] = (
        snap.get("solve_iterations", 0) / solves if solves else 0.0
    )
    snap["solves_per_event"] = solves / events if events else 0.0
    return snap


def sched_perf_summary(perf: "Mapping[str, float] | object") -> dict[str, float]:
    """Normalise a :class:`~repro.core.perf.SchedPerf` (or its snapshot
    dict) for embedding in run summaries and ``BENCH_sched.json``.  The
    derived ratios make scheduler-side regressions (cold caches, lost warm
    starts) legible at a glance."""
    snap = dict(perf.snapshot()) if hasattr(perf, "snapshot") else dict(perf)
    lookups = snap.get("cache_hits", 0) + snap.get("cache_misses", 0)
    solves = snap.get("solves", 0)
    snap["cache_hit_rate"] = snap.get("cache_hits", 0) / lookups if lookups else 0.0
    snap["augmentations_per_solve"] = (
        snap.get("augmentations", 0) / solves if solves else 0.0
    )
    return snap


def write_run_json(
    result: RunResult, path: str | Path, *, num_nodes: int | None = None
) -> Path:
    """Dump a run summary to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(run_summary(result, num_nodes=num_nodes), indent=2))
    return path


def write_series_csv(
    path: str | Path,
    series: Mapping[str, Iterable[float]],
    *,
    index_name: str = "index",
) -> Path:
    """Write labelled, equal-length series as CSV columns (a figure's data)."""
    path = Path(path)
    columns = {name: list(values) for name, values in series.items()}
    if not columns:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in columns.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (n,) = lengths
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([index_name, *columns.keys()])
        for i in range(n):
            writer.writerow([i, *(columns[name][i] for name in columns)])
    return path
