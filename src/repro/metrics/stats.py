"""Summary statistics used throughout the evaluation.

Small, numpy-vectorised helpers matching the metrics the paper reports:
avg/max/min triples (Figures 7(a,b), 8(a,b)), imbalance factors ("the
maximum I/O time to read a chunk file is 9X that of the minimum"), locality
fractions, and trace summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Summary:
    """avg/max/min/std of a sample, the paper's reporting format."""

    avg: float
    max: float
    min: float
    std: float
    n: int

    @property
    def imbalance(self) -> float:
        """max / min; inf when the minimum is zero."""
        if self.min == 0:
            return float("inf") if self.max > 0 else 1.0
        return self.max / self.min

    def as_dict(self) -> dict[str, float]:
        return {"avg": self.avg, "max": self.max, "min": self.min, "std": self.std}


def summarize(values) -> Summary:
    """Summary of any 1-D sample (empty samples are all-zero)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return Summary(0.0, 0.0, 0.0, 0.0, 0)
    return Summary(
        avg=float(arr.mean()),
        max=float(arr.max()),
        min=float(arr.min()),
        std=float(arr.std()),
        n=int(arr.size),
    )


def imbalance_factor(values) -> float:
    """max/min of a sample (the paper's "NX that of the minimum")."""
    return summarize(values).imbalance


def coefficient_of_variation(values) -> float:
    """std/mean — a scale-free balance measure for ablations."""
    s = summarize(values)
    if s.avg == 0:
        return 0.0
    return s.std / s.avg


def jains_fairness(values) -> float:
    """Jain's fairness index: 1 = perfectly balanced, 1/n = maximally skewed."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 1.0
    denom = arr.size * float(np.sum(arr * arr))
    if denom == 0:
        return 1.0
    total = float(arr.sum())
    return total * total / denom


def percentile_summary(values, percentiles=(50, 90, 99)) -> dict[str, float]:
    """Named percentiles of a sample, for trace characterisation."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {f"p{p}": 0.0 for p in percentiles}
    return {f"p{p}": float(np.percentile(arr, p)) for p in percentiles}


def windowed_means(values, num_windows: int = 10) -> np.ndarray:
    """Mean of each of ``num_windows`` consecutive slices of a trace.

    Used to characterise trends over an execution (Figure 7(c)'s "the I/O
    time increases dramatically after the initiation").
    """
    if num_windows <= 0:
        raise ValueError("num_windows must be positive")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return np.zeros(num_windows)
    splits = np.array_split(arr, num_windows)
    return np.array([float(s.mean()) if s.size else 0.0 for s in splits])
