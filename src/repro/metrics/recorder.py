"""Per-node serve monitoring across experiment phases.

The paper "implement[s] a monitor to record the amount of data served by
each storage node".  :class:`ServeMonitor` snapshots a file system's
DataNode counters so one experiment's figures can be separated from
another's without resetting global state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dfs.filesystem import DistributedFileSystem
from .stats import Summary, summarize


@dataclass
class ServeMonitor:
    """Delta-counting monitor over a file system's serve counters."""

    fs: DistributedFileSystem
    _baseline_bytes: dict[int, int] | None = None
    _baseline_requests: dict[int, int] | None = None

    def start(self) -> None:
        """Snapshot current counters; subsequent reads count from here."""
        self._baseline_bytes = dict(self.fs.bytes_served_per_node())
        self._baseline_requests = dict(self.fs.requests_served_per_node())

    def _require_started(self) -> None:
        if self._baseline_bytes is None:
            raise RuntimeError("monitor not started; call start() first")

    def bytes_served(self) -> dict[int, int]:
        """Bytes served per node since :meth:`start`."""
        self._require_started()
        now = self.fs.bytes_served_per_node()
        assert self._baseline_bytes is not None
        return {n: now[n] - self._baseline_bytes.get(n, 0) for n in now}

    def requests_served(self) -> dict[int, int]:
        """Requests served per node since :meth:`start`."""
        self._require_started()
        now = self.fs.requests_served_per_node()
        assert self._baseline_requests is not None
        return {n: now[n] - self._baseline_requests.get(n, 0) for n in now}

    def served_mb_array(self) -> np.ndarray:
        """Per-node served MB as an array indexed by node id."""
        served = self.bytes_served()
        out = np.zeros(self.fs.num_nodes)
        for node, b in served.items():
            out[node] = b / 1e6
        return out

    def served_summary_mb(self) -> Summary:
        """The Figure-8 metric: avg/max/min MB served per node."""
        return summarize(self.served_mb_array())

    def chunks_served_array(self) -> np.ndarray:
        """Per-node request counts (Figure 1(a)'s 'size of data served')."""
        served = self.requests_served()
        out = np.zeros(self.fs.num_nodes, dtype=np.int64)
        for node, c in served.items():
            out[node] = c
        return out
