"""Measurement utilities: summaries, fairness indices, serve monitoring."""

from ..core.perf import SchedPerf
from ..simulate.perf import SimPerf
from .export import (
    perf_summary,
    records_to_rows,
    run_summary,
    sched_perf_summary,
    write_records_csv,
    write_run_json,
    write_series_csv,
)
from .recorder import ServeMonitor
from .stats import (
    Summary,
    coefficient_of_variation,
    imbalance_factor,
    jains_fairness,
    percentile_summary,
    summarize,
    windowed_means,
)

__all__ = [
    "SchedPerf",
    "ServeMonitor",
    "SimPerf",
    "Summary",
    "perf_summary",
    "coefficient_of_variation",
    "imbalance_factor",
    "jains_fairness",
    "percentile_summary",
    "records_to_rows",
    "run_summary",
    "sched_perf_summary",
    "write_records_csv",
    "write_run_json",
    "write_series_csv",
    "summarize",
    "windowed_means",
]
