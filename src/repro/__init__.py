"""Opass reproduction: optimization of parallel data access on distributed file systems.

Reimplements the full system from Yin et al., *"Opass: Analysis and
Optimization of Parallel Data Access on Distributed File Systems"*
(IPDPS 2015): an HDFS-like storage model, a flow-level cluster simulator,
the matching-based Opass schedulers (max-flow single-data, Algorithm-1
multi-data, guided-list dynamic), the paper's analytical models, and the
applications it evaluates (ParaView, mpiBLAST, multi-input comparison).

Quick start::

    from repro import (
        ClusterSpec, DistributedFileSystem, ProcessPlacement,
        uniform_dataset, opass_single_data,
    )

    fs = DistributedFileSystem(ClusterSpec.homogeneous(64), seed=7)
    data = uniform_dataset("bench", 640)
    fs.put_dataset(data)
    procs = ProcessPlacement.one_per_node(64)
    result, graph, tasks = opass_single_data(fs, data, procs)
    print(result.full_matching)  # usually True: every read is local
"""

from .analysis import figure3_series, prob_more_than, section3b_summary
from .core import (
    Assignment,
    DefaultDynamicPolicy,
    DynamicPlan,
    LocalityGraph,
    ProcessPlacement,
    Task,
    locality_fraction,
    opass_dynamic_plan,
    opass_multi_data,
    opass_single_data,
    optimize_multi_data,
    optimize_single_data,
    plan_dynamic,
    random_assignment,
    rank_interval_assignment,
    tasks_from_dataset,
    tasks_from_datasets,
)
from .dfs import (
    Cluster,
    ClusterSpec,
    Dataset,
    DistributedFileSystem,
    uniform_dataset,
)
from .simulate import ParallelReadRun, RunResult, StaticSource

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "Cluster",
    "ClusterSpec",
    "Dataset",
    "DefaultDynamicPolicy",
    "DistributedFileSystem",
    "DynamicPlan",
    "LocalityGraph",
    "ParallelReadRun",
    "ProcessPlacement",
    "RunResult",
    "StaticSource",
    "Task",
    "__version__",
    "figure3_series",
    "locality_fraction",
    "opass_dynamic_plan",
    "opass_multi_data",
    "opass_single_data",
    "optimize_multi_data",
    "optimize_single_data",
    "plan_dynamic",
    "prob_more_than",
    "random_assignment",
    "rank_interval_assignment",
    "section3b_summary",
    "tasks_from_dataset",
    "tasks_from_datasets",
    "uniform_dataset",
]
