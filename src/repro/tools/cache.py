"""Incremental analysis cache for ``opass-verify`` (``.opass-cache/``).

Two content-addressed stores, both keyed so that *any* relevant change
misses cleanly instead of serving stale results:

* **summary bundles** — per-module :class:`~.summaries.LocalSummary`
  tables plus the module's name and runtime deps, keyed by
  ``sha256(source)`` + the config fingerprint.  Parsing a module is
  cheap; *summarizing* it (the per-function dataflow walk) is the
  expensive part, and that is what a bundle hit skips.
* **check results** — the raw OPS101–OPS103 + OPS201–OPS204 violations
  for one module, keyed by the module key **plus a closure signature**:
  the hash of every (module, content-hash) pair in its transitive
  import closure.  Editing a leaf module therefore invalidates exactly
  the modules that can see it, and nothing else.

Both stores live under ``.opass-cache/v<ANALYZER_VERSION>/`` so bumping
:data:`~.callgraph.ANALYZER_VERSION` abandons old entries wholesale.
Corrupt or unreadable entries count as misses — the cache can be
deleted (or half-deleted) at any time without affecting results.

Known approximations: dynamic-dispatch fallback resolution consults
*every* class in the project, not just the import closure, so renaming a
same-named method in an unrelated module does not invalidate cached
check results.  Likewise, OPS202's worker-reachability is rooted at the
``worker-entrypoints`` registry, which may live outside a checked
module's import closure — an edit that only changes *whether* a module
is worker-reachable (without touching the module or its imports) can
serve a stale OPS202 result.  Config edits (including the entrypoint
registry) are covered by the fingerprint; ``--no-cache`` (or removing
``.opass-cache/``) forces a guaranteed-fresh pass.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from .callgraph import ANALYZER_VERSION, source_fingerprint
from .summaries import LocalSummary

#: Bumped when the on-disk bundle layout changes (independent of the
#: analyzer semantics version, which also participates in the path).
CACHE_FORMAT = 1


@dataclass
class CacheStats:
    """Hit/miss counters, surfaced by ``verify --stats`` and the tests."""

    summary_hits: int = 0
    summary_misses: int = 0
    check_hits: int = 0
    check_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "summary_hits": self.summary_hits,
            "summary_misses": self.summary_misses,
            "check_hits": self.check_hits,
            "check_misses": self.check_misses,
        }


def module_key(source: str, config_fingerprint: str) -> str:
    """Cache key of one module: content hash + configuration."""
    return f"{source_fingerprint(source)[:32]}-{config_fingerprint}"


def closure_signature(members: list[tuple[str, str]]) -> str:
    """Signature of a module's import closure: ``(module, key)`` pairs."""
    payload = json.dumps(sorted(members))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class AnalysisCache:
    """Filesystem-backed cache; ``root=None`` disables it (all misses)."""

    def __init__(self, root: str | Path | None, stats: CacheStats | None = None):
        self.root = Path(root) if root is not None else None
        self.stats = stats if stats is not None else CacheStats()

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _dir(self, kind: str) -> Path:
        assert self.root is not None
        return self.root / f"v{ANALYZER_VERSION}.{CACHE_FORMAT}" / kind

    def _read(self, kind: str, name: str) -> dict | list | None:
        if self.root is None:
            return None
        path = self._dir(kind) / f"{name}.json"
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def _write(self, kind: str, name: str, payload: object) -> None:
        if self.root is None:
            return
        directory = self._dir(kind)
        try:
            directory.mkdir(parents=True, exist_ok=True)
            tmp = directory / f"{name}.json.tmp"
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(directory / f"{name}.json")
        except OSError:
            pass  # a read-only cache dir must not fail the analysis

    # ---- summary bundles ---------------------------------------------------

    def load_bundle(self, key: str) -> dict | None:
        """``{"module", "deps", "functions"}`` for a module key, or None.

        Counts a summary hit/miss; the ``functions`` table maps local
        qualnames to :class:`LocalSummary` dicts (decode with
        :meth:`LocalSummary.from_dict`).
        """
        data = self._read("summaries", key)
        if (
            isinstance(data, dict)
            and isinstance(data.get("module"), str)
            and isinstance(data.get("deps"), list)
            and isinstance(data.get("functions"), dict)
        ):
            self.stats.summary_hits += 1
            return data
        self.stats.summary_misses += 1
        return None

    def store_bundle(
        self,
        key: str,
        module: str,
        deps: set[str],
        functions: dict[str, LocalSummary],
    ) -> None:
        self._write(
            "summaries",
            key,
            {
                "module": module,
                "deps": sorted(deps),
                "functions": {
                    name: summary.to_dict() for name, summary in functions.items()
                },
            },
        )

    # ---- per-module check results ------------------------------------------

    def load_checks(self, key: str, closure_sig: str) -> list[dict] | None:
        """Raw (pre-suppression) violation dicts for one module, or None."""
        data = self._read("checks", f"{key}.{closure_sig}")
        if isinstance(data, list) and all(isinstance(v, dict) for v in data):
            self.stats.check_hits += 1
            return data
        self.stats.check_misses += 1
        return None

    def store_checks(
        self, key: str, closure_sig: str, violations: list[dict]
    ) -> None:
        self._write("checks", f"{key}.{closure_sig}", violations)
