"""``[tool.opass-lint]`` configuration.

The defaults below describe *this* repository: the package layering DAG,
the wall-clock allow-list, the names of float-typed simulation
quantities, and the per-rule package scopes.  A ``pyproject.toml`` can
override any key under ``[tool.opass-lint]`` (kebab-case, as usual for
tool tables); unknown keys are rejected so typos fail loudly.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

#: The layering DAG as a rank table: a module in package P may import
#: package Q only when ``layers[Q] < layers[P]`` (or Q is P itself).
#: ``core``/``dfs`` sit at the bottom, ``simulate`` above them, and the
#: experiment/application/presentation layers on top.  Top-level modules
#: (``repro.cli``, ``repro.report``) and ``repro.tools`` may import
#: anything; nothing may import ``repro.tools``.
DEFAULT_LAYERS: dict[str, int] = {
    "dfs": 0,
    "core": 1,
    "simulate": 2,
    "metrics": 3,
    "workloads": 3,
    "analysis": 3,
    "viz": 3,
    "parallel": 4,
    "apps": 5,
    "experiments": 6,
    "report": 7,
    "cli": 8,
    "tools": 8,
}

#: Attribute/variable names treated as float-typed simulation quantities
#: by OPS004 (clock readings, rates, byte residues, phase walls).
DEFAULT_FLOAT_ATTRS: tuple[str, ...] = (
    "now",
    "remaining",
    "rate",
    "rate_cap",
    "makespan",
    "issue_time",
    "end_time",
    "start_time",
    "finish_time",
    "latency",
    "duration",
    "elapsed",
    "settled_at",
)

#: Per-rule package scopes (None → the whole tree).
DEFAULT_SCOPES: dict[str, tuple[str, ...] | None] = {
    "OPS001": None,
    "OPS002": ("simulate", "core", "dfs"),
    "OPS003": ("simulate", "core", "dfs"),
    "OPS004": ("simulate", "core", "dfs"),
    "OPS005": ("simulate", "core"),
    "OPS006": None,
    # interprocedural rules (repro.tools.interproc)
    "OPS101": None,
    "OPS102": ("simulate", "dfs"),
    "OPS103": None,
    # concurrency / float-identity rules (repro.tools.concurrency)
    "OPS201": None,
    "OPS202": None,
    "OPS203": None,
    "OPS204": None,
}

#: Modules whose functions are matching kernels: pure readers of the
#: block layout.  OPS103 forbids them from (transitively) mutating any
#: protected-type argument or writing module globals.
DEFAULT_PURE_MODULES: tuple[str, ...] = (
    "repro.core.opass",
    "repro.core.bipartite",
    "repro.core.csr",
    "repro.core.flownetwork",
    "repro.core.mincostflow",
    "repro.core.multi_data",
    "repro.core.single_data",
    "repro.simulate.components",
    "repro.simulate.vectorized",
)

#: Class names whose instances carry DFS state; mutating one from a pure
#: module is an OPS103 violation.
DEFAULT_PROTECTED_TYPES: tuple[str, ...] = (
    "Cluster",
    "NameNode",
    "DataNode",
    "DistributedFileSystem",
)

#: Packages whose code makes scheduler/placement decisions — entropy
#: reaching a call result here is an OPS101 violation.
DEFAULT_DECISION_PACKAGES: tuple[str, ...] = ("core", "dfs")

#: Modules where wall-clock reads are legitimate (perf instrumentation;
#: the pool times dispatch round-trips, never simulation quantities).
#: Single source of truth for OPS002 — the pyproject ``[tool.opass-lint]``
#: table intentionally does NOT mirror this list.
DEFAULT_WALLCLOCK_ALLOW: tuple[str, ...] = (
    "repro.core.perf",
    "repro.simulate.perf",
    "repro.parallel.pool",
)

#: Functions dispatched inside forked worker processes.  OPS201 walks the
#: call graph from each entrypoint and flags any transitively reachable
#: fork-unsafe state; OPS202 restricts writes in the reachable set to
#: declared shared-view slices.
DEFAULT_WORKER_ENTRYPOINTS: tuple[str, ...] = ("repro.parallel.pool._worker_main",)

#: Module prefixes whose kernels must stay bit-for-bit identical to the
#: reference solvers.  OPS203 enforces the float64/int64 dtype lattice and
#: the reassociation ban there (same prefix machinery as ``pure_modules``).
DEFAULT_KERNEL_MODULES: tuple[str, ...] = (
    "repro.simulate.vectorized",
    "repro.core.flownetwork",
)

#: Callables whose result is a declared per-dispatch shared-memory slice
#: view; OPS202 allows worker writes only through these.
DEFAULT_SHARED_VIEW_FACTORIES: tuple[str, ...] = ("numpy.frombuffer",)


@dataclass(frozen=True)
class LintConfig:
    """Resolved analyzer configuration."""

    #: package → rank; imports must point strictly down-rank.
    layers: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LAYERS))
    #: modules where wall-clock reads are legitimate (see
    #: :data:`DEFAULT_WALLCLOCK_ALLOW`, the single source of truth).
    wallclock_allow: tuple[str, ...] = DEFAULT_WALLCLOCK_ALLOW
    #: receiver attribute names whose ``.remove`` is O(small) by contract.
    remove_allow: tuple[str, ...] = ("_alloc",)
    #: function names that ARE the tolerance helpers (OPS004 is off inside).
    float_eq_helpers: tuple[str, ...] = ("isclose", "close_enough", "approx_equal")
    #: names of float-typed sim quantities for OPS004.
    float_attrs: tuple[str, ...] = DEFAULT_FLOAT_ATTRS
    #: per-rule package scope; a rule fires only inside its scope.
    scopes: dict[str, tuple[str, ...] | None] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES)
    )
    #: path substrings excluded from linting entirely.
    exclude: tuple[str, ...] = ()
    #: module prefixes holding pure matching kernels (OPS103).
    pure_modules: tuple[str, ...] = DEFAULT_PURE_MODULES
    #: DFS state types pure modules must not mutate (OPS103).
    protected_types: tuple[str, ...] = DEFAULT_PROTECTED_TYPES
    #: packages whose call results must stay entropy-free (OPS101).
    decision_packages: tuple[str, ...] = DEFAULT_DECISION_PACKAGES
    #: fork-worker dispatch entrypoints (OPS201/OPS202 roots).
    worker_entrypoints: tuple[str, ...] = DEFAULT_WORKER_ENTRYPOINTS
    #: module prefixes holding bit-identical kernels (OPS203).
    kernel_modules: tuple[str, ...] = DEFAULT_KERNEL_MODULES
    #: callables producing declared shared-memory slice views (OPS202).
    shared_view_factories: tuple[str, ...] = DEFAULT_SHARED_VIEW_FACTORIES

    def in_scope(self, rule: str, package: str | None) -> bool:
        scope = self.scopes.get(rule, None)
        if scope is None:
            return True
        return package is not None and package in scope

    def fingerprint(self) -> str:
        """Stable digest of the configuration, part of every cache key."""
        import hashlib
        import json
        from dataclasses import asdict

        payload = json.dumps(asdict(self), sort_keys=True, default=list)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ConfigError(ValueError):
    """Raised for unreadable or malformed ``[tool.opass-lint]`` tables."""


_KEYS = {
    "layers": "layers",
    "wallclock-allow": "wallclock_allow",
    "remove-allow": "remove_allow",
    "float-eq-helpers": "float_eq_helpers",
    "float-attrs": "float_attrs",
    "scopes": "scopes",
    "exclude": "exclude",
    "pure-modules": "pure_modules",
    "protected-types": "protected_types",
    "decision-packages": "decision_packages",
    "worker-entrypoints": "worker_entrypoints",
    "kernel-modules": "kernel_modules",
    "shared-view-factories": "shared_view_factories",
}


def config_from_table(table: dict[str, object]) -> LintConfig:
    """Build a :class:`LintConfig` from a ``[tool.opass-lint]`` mapping."""
    kwargs: dict[str, object] = {}
    for key, value in table.items():
        attr = _KEYS.get(key)
        if attr is None:
            raise ConfigError(
                f"unknown [tool.opass-lint] key {key!r} (known: {sorted(_KEYS)})"
            )
        if attr == "layers":
            if not isinstance(value, dict) or not all(
                isinstance(k, str) and isinstance(v, int) for k, v in value.items()
            ):
                raise ConfigError("layers must map package names to integer ranks")
            kwargs["layers"] = dict(value)
        elif attr == "scopes":
            if not isinstance(value, dict):
                raise ConfigError("scopes must map rule ids to package lists")
            scopes: dict[str, tuple[str, ...] | None] = dict(DEFAULT_SCOPES)
            for rule, pkgs in value.items():
                if not isinstance(pkgs, list) or not all(
                    isinstance(p, str) for p in pkgs
                ):
                    raise ConfigError(f"scopes[{rule!r}] must be a list of packages")
                scopes[rule] = tuple(pkgs)
            kwargs["scopes"] = scopes
        else:
            if not isinstance(value, list) or not all(
                isinstance(v, str) for v in value
            ):
                raise ConfigError(f"{key} must be a list of strings")
            kwargs[attr] = tuple(value)
    return LintConfig(**kwargs)  # type: ignore[arg-type]


def load_config(pyproject: str | Path) -> LintConfig:
    """Load ``[tool.opass-lint]`` from a ``pyproject.toml`` file.

    Missing file or missing table → the built-in defaults.
    """
    path = Path(pyproject)
    if not path.is_file():
        return LintConfig()
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"cannot parse {path}: {exc}") from exc
    table = data.get("tool", {}).get("opass-lint")
    if table is None:
        return LintConfig()
    if not isinstance(table, dict):
        raise ConfigError("[tool.opass-lint] must be a table")
    return config_from_table(table)


def find_pyproject(start: str | Path) -> Path | None:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    here = Path(start).resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
