"""``[tool.opass-lint]`` configuration.

The defaults below describe *this* repository: the package layering DAG,
the wall-clock allow-list, the names of float-typed simulation
quantities, and the per-rule package scopes.  A ``pyproject.toml`` can
override any key under ``[tool.opass-lint]`` (kebab-case, as usual for
tool tables); unknown keys are rejected so typos fail loudly.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

#: The layering DAG as a rank table: a module in package P may import
#: package Q only when ``layers[Q] < layers[P]`` (or Q is P itself).
#: ``core``/``dfs`` sit at the bottom, ``simulate`` above them, and the
#: experiment/application/presentation layers on top.  Top-level modules
#: (``repro.cli``, ``repro.report``) and ``repro.tools`` may import
#: anything; nothing may import ``repro.tools``.
DEFAULT_LAYERS: dict[str, int] = {
    "dfs": 0,
    "core": 1,
    "simulate": 2,
    "metrics": 3,
    "workloads": 3,
    "analysis": 3,
    "viz": 3,
    "parallel": 4,
    "apps": 5,
    "experiments": 6,
    "report": 7,
    "cli": 8,
    "tools": 8,
}

#: Attribute/variable names treated as float-typed simulation quantities
#: by OPS004 (clock readings, rates, byte residues, phase walls).
DEFAULT_FLOAT_ATTRS: tuple[str, ...] = (
    "now",
    "remaining",
    "rate",
    "rate_cap",
    "makespan",
    "issue_time",
    "end_time",
    "start_time",
    "finish_time",
    "latency",
    "duration",
    "elapsed",
    "settled_at",
)

#: Per-rule package scopes (None → the whole tree).
DEFAULT_SCOPES: dict[str, tuple[str, ...] | None] = {
    "OPS001": None,
    "OPS002": ("simulate", "core", "dfs"),
    "OPS003": ("simulate", "core", "dfs"),
    "OPS004": ("simulate", "core", "dfs"),
    "OPS005": ("simulate", "core"),
    "OPS006": None,
    # interprocedural rules (repro.tools.interproc)
    "OPS101": None,
    "OPS102": ("simulate", "dfs"),
    "OPS103": None,
    # concurrency / float-identity rules (repro.tools.concurrency)
    "OPS201": None,
    "OPS202": None,
    "OPS203": None,
    "OPS204": None,
}

#: Modules whose functions are matching kernels: pure readers of the
#: block layout.  OPS103 forbids them from (transitively) mutating any
#: protected-type argument or writing module globals.
DEFAULT_PURE_MODULES: tuple[str, ...] = (
    "repro.core.opass",
    "repro.core.bipartite",
    "repro.core.csr",
    "repro.core.flownetwork",
    "repro.core.mincostflow",
    "repro.core.multi_data",
    "repro.core.single_data",
    "repro.simulate.cascade",
    "repro.simulate.components",
    "repro.simulate.flowtable",
    "repro.simulate.vectorized",
)

#: Class names whose instances carry DFS state; mutating one from a pure
#: module is an OPS103 violation.
DEFAULT_PROTECTED_TYPES: tuple[str, ...] = (
    "Cluster",
    "NameNode",
    "DataNode",
    "DistributedFileSystem",
)

#: Packages whose code makes scheduler/placement decisions — entropy
#: reaching a call result here is an OPS101 violation.
DEFAULT_DECISION_PACKAGES: tuple[str, ...] = ("core", "dfs")

#: Modules where wall-clock reads are legitimate (perf instrumentation;
#: the pool times dispatch round-trips, never simulation quantities).
#: Single source of truth for OPS002 — the pyproject ``[tool.opass-lint]``
#: table intentionally does NOT mirror this list.
DEFAULT_WALLCLOCK_ALLOW: tuple[str, ...] = (
    "repro.core.perf",
    "repro.simulate.perf",
    "repro.parallel.pool",
)

#: Functions dispatched inside forked worker processes.  OPS201 walks the
#: call graph from each entrypoint and flags any transitively reachable
#: fork-unsafe state; OPS202 restricts writes in the reachable set to
#: declared shared-view slices.
DEFAULT_WORKER_ENTRYPOINTS: tuple[str, ...] = ("repro.parallel.pool._worker_main",)

#: Module prefixes whose kernels must stay bit-for-bit identical to the
#: reference solvers.  OPS203 enforces the float64/int64 dtype lattice and
#: the reassociation ban there (same prefix machinery as ``pure_modules``).
DEFAULT_KERNEL_MODULES: tuple[str, ...] = (
    "repro.simulate.vectorized",
    "repro.core.flownetwork",
)

#: Callables whose result is a declared per-dispatch shared-memory slice
#: view; OPS202 allows worker writes only through these.
DEFAULT_SHARED_VIEW_FACTORIES: tuple[str, ...] = ("numpy.frombuffer",)

#: Declared cost budgets (OPS301/OPS302), as O-notation strings mapped to
#: the analyzer's cost lattice: 0 ≡ O(1), 1 ≡ O(deg) (one flow's replica
#: path, one component), 2 ≡ O(n) (an axis that grows with the problem),
#: 3 ≡ O(n log n), 4 ≡ O(n²).  Nested iteration sums levels, so a linear
#: build under a linear loop lands at 4.
COST_BUDGET_LEVELS: dict[str, int] = {
    "O(1)": 0,
    "O(deg)": 1,
    "O(|path|)": 1,
    "O(n)": 2,
    "O(E)": 2,
    "O(n log n)": 3,
    "O(n^2)": 4,
}

#: Iteration axes that are O(deg)-small by contract: a flow's replica
#: path (≤ replication factor), one component's membership, one lowered
#: component's arrays.  ``for f in group`` is charged to the component,
#: not the world — exactly the amortization PR 4 bought.
DEFAULT_SMALL_AXES: tuple[str, ...] = (
    "path",
    "group",
    "members",
    "flows",
    "caps",
    "handles",
    "descs",
    "batch",
)

#: Cost contracts on the hot-path functions PRs 4–6 made incremental
#: (OPS301–OPS303 fire only inside contracted functions; everything else
#: merely contributes summarized cost).  Keys are fully-qualified
#: function keys, values are budgets from :data:`COST_BUDGET_LEVELS`.
DEFAULT_COST_CONTRACTS: dict[str, str] = {
    # per-event allocator maintenance is O(|path| + smaller merged comp)
    "repro.simulate.components.ComponentAllocator.add": "O(deg)",
    "repro.simulate.components.ComponentAllocator.remove": "O(deg)",
    "repro.simulate.components.ComponentAllocator.concurrency": "O(1)",
    # dirty-set re-solve: linear in the dirty components plus their sort
    "repro.simulate.components.ComponentAllocator.solve": "O(n log n)",
    "repro.simulate.components.ComponentAllocator._dirty_groups": "O(n)",
    # one lowered component end to end
    "repro.simulate.vectorized.lower_component": "O(n)",
    "repro.simulate.vectorized.solve_lowered": "O(n log n)",
    # CSR row lookups are slice reads, never rebuilds
    "repro.core.csr.LocalityCSR.task_row": "O(deg)",
    "repro.core.csr.LocalityCSR.proc_row": "O(deg)",
    # flow-network edge bookkeeping on the augmenting hot path
    "repro.core.flownetwork.FlowNetwork.add_edge": "O(1)",
    "repro.core.flownetwork.FlowNetwork.flow_on": "O(1)",
    # locality-graph per-task adjacency reads
    "repro.core.bipartite.LocalityGraph.ranks_of_task": "O(deg)",
    "repro.core.bipartite.LocalityGraph.edge_weight": "O(deg)",
    # pool dispatch is linear in the batch it ships
    "repro.parallel.pool.ComponentSolvePool.solve_batch": "O(n)",
    # FlowTable per-event slot operations stay O(deg); only the
    # solve-boundary kernels may touch the whole slot range
    "repro.simulate.flowtable.FlowTable.acquire": "O(deg)",
    "repro.simulate.flowtable.FlowTable.release": "O(deg)",
    "repro.simulate.flowtable.FlowTable.gen_of": "O(1)",
    "repro.simulate.flowtable.FlowTable.views": "O(1)",
    "repro.simulate.flowtable.FlowTable.settle": "O(n)",
    "repro.simulate.flowtable.FlowTable.sync_remaining": "O(n)",
    # canonical solve-memo keys walk the member paths once; the memo
    # itself is a dict probe either way (store's clear-on-full is
    # amortized against max_entries inserts)
    "repro.simulate.cascade.pair_key": "O(deg)",
    "repro.simulate.cascade.component_key": "O(deg)",
    "repro.simulate.cascade.SolveMemo.lookup": "O(1)",
    "repro.simulate.cascade.SolveMemo.store": "O(1)",
}

#: OPS304 contract echo: bench counters whose growth across scales must
#: stay within ``max-growth`` (ratio of largest to smallest per-unit
#: value).  ``per: None`` bounds the counter itself.  Deliberately built
#: on deterministic work counters, not wall times.
DEFAULT_CONTRACT_ECHO: tuple[dict[str, object], ...] = (
    {
        "work": "solve_iterations",
        "per": "events",
        "max-growth": 2.0,
        "note": "water-filling solves per event stay bounded "
        "(ComponentAllocator.solve is per-dirty-component)",
    },
    {
        "work": "stale_pops",
        "per": "events",
        "max-growth": 2.0,
        "note": "lazy completion-heap invalidation is amortized O(1)/event",
    },
    {
        "work": "component_size_mean",
        "per": None,
        "max-growth": 3.0,
        "note": "dirty components stay O(deg), not O(n) "
        "(the add/remove O(|path|) contract)",
    },
    {
        "work": "heap_pushes",
        "per": "events",
        "max-growth": 2.0,
        "note": "completion predictions stay O(changed flows)/event "
        "(the lazy heap is fed per re-rated flow, never rebuilt)",
    },
    {
        "work": "coalesced_events",
        "per": "events",
        "max-growth": 2.0,
        "note": "same-timestamp timer waves keep coalescing as scale "
        "grows (the 2048/4096-node collapse fix does not decay)",
    },
    {
        "work": "augmentations",
        "per": "tasks",
        "max-growth": 2.0,
        "note": "incremental re-matching is amortized O(1) augmentations/task",
    },
    {
        "work": "bfs_phases",
        "per": "solves",
        "max-growth": 3.0,
        "note": "Dinic phase count grows logarithmically, not linearly",
    },
)

#: Directories linted with the relaxed profile (OPS000/OPS001/OPS003,
#: literal seeds allowed): benches and tests pin seeds on purpose, but
#: must still stay free of *unseeded* RNG and unordered-set iteration.
DEFAULT_EXTRA_PATHS: tuple[str, ...] = ("benchmarks", "tests")

#: Rules active under the relaxed profile.
DEFAULT_EXTRA_RULES: tuple[str, ...] = ("OPS000", "OPS001", "OPS003")


@dataclass(frozen=True)
class LintConfig:
    """Resolved analyzer configuration."""

    #: package → rank; imports must point strictly down-rank.
    layers: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LAYERS))
    #: modules where wall-clock reads are legitimate (see
    #: :data:`DEFAULT_WALLCLOCK_ALLOW`, the single source of truth).
    wallclock_allow: tuple[str, ...] = DEFAULT_WALLCLOCK_ALLOW
    #: receiver attribute names whose ``.remove`` is O(small) by contract
    #: (the allocator handle: ``self._alloc`` in the general loop,
    #: the ``calloc`` local in the engine's fused fast-forward loop).
    remove_allow: tuple[str, ...] = ("_alloc", "calloc")
    #: function names that ARE the tolerance helpers (OPS004 is off inside).
    float_eq_helpers: tuple[str, ...] = ("isclose", "close_enough", "approx_equal")
    #: names of float-typed sim quantities for OPS004.
    float_attrs: tuple[str, ...] = DEFAULT_FLOAT_ATTRS
    #: per-rule package scope; a rule fires only inside its scope.
    scopes: dict[str, tuple[str, ...] | None] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES)
    )
    #: path substrings excluded from linting entirely.
    exclude: tuple[str, ...] = ()
    #: module prefixes holding pure matching kernels (OPS103).
    pure_modules: tuple[str, ...] = DEFAULT_PURE_MODULES
    #: DFS state types pure modules must not mutate (OPS103).
    protected_types: tuple[str, ...] = DEFAULT_PROTECTED_TYPES
    #: packages whose call results must stay entropy-free (OPS101).
    decision_packages: tuple[str, ...] = DEFAULT_DECISION_PACKAGES
    #: fork-worker dispatch entrypoints (OPS201/OPS202 roots).
    worker_entrypoints: tuple[str, ...] = DEFAULT_WORKER_ENTRYPOINTS
    #: module prefixes holding bit-identical kernels (OPS203).
    kernel_modules: tuple[str, ...] = DEFAULT_KERNEL_MODULES
    #: callables producing declared shared-memory slice views (OPS202).
    shared_view_factories: tuple[str, ...] = DEFAULT_SHARED_VIEW_FACTORIES
    #: function key → declared budget (OPS301–OPS303 fire only here).
    cost_contracts: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_COST_CONTRACTS)
    )
    #: iteration axes charged at O(deg) by the cost lattice.
    small_axes: tuple[str, ...] = DEFAULT_SMALL_AXES
    #: OPS304 bench-counter growth bounds.
    contract_echo: tuple[dict[str, object], ...] = DEFAULT_CONTRACT_ECHO
    #: directories linted with the relaxed profile.
    extra_paths: tuple[str, ...] = DEFAULT_EXTRA_PATHS
    #: rules active under the relaxed profile.
    extra_rules: tuple[str, ...] = DEFAULT_EXTRA_RULES

    def in_scope(self, rule: str, package: str | None) -> bool:
        scope = self.scopes.get(rule, None)
        if scope is None:
            return True
        return package is not None and package in scope

    def _digest(self, payload: object) -> str:
        import hashlib
        import json

        text = json.dumps(payload, sort_keys=True, default=list)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def fingerprint(self) -> str:
        """Stable digest of the *whole* configuration."""
        from dataclasses import asdict

        return self._digest(asdict(self))

    def summary_fingerprint(self) -> str:
        """Digest of the fields that affect per-module *summaries*.

        Local summaries are pure functions of one module's source (axis
        names are recorded raw and classified later), so today this
        subset is empty and every config edit keeps summary bundles
        warm.  The hook stays so a future summary-relevant knob slots in
        without a cache-layout change.
        """
        return self._digest({})

    def check_fingerprint(self) -> str:
        """Digest of the fields that affect per-module *check results*.

        Deliberately excludes lint-only knobs (layers, float-attrs,
        wallclock-allow, …) and the cost-contract registry — contracts
        enter each module's cache key individually via
        :meth:`contracts_signature`, so editing one bound invalidates
        exactly the module that declares the contracted function.
        """
        return self._digest(
            {
                "scopes": self.scopes,
                "pure_modules": self.pure_modules,
                "protected_types": self.protected_types,
                "decision_packages": self.decision_packages,
                "worker_entrypoints": self.worker_entrypoints,
                "kernel_modules": self.kernel_modules,
                "shared_view_factories": self.shared_view_factories,
                "small_axes": self.small_axes,
            }
        )

    def contracts_signature(self, module: str, function_locals: set[str]) -> str:
        """Digest of the contracts declared on ``module``'s own functions.

        Computable on the warm path from a cached bundle's function
        table alone — no parsing required.
        """
        own = sorted(
            (key, budget)
            for key, budget in self.cost_contracts.items()
            if key in {f"{module}.{local}" for local in function_locals}
        )
        return self._digest(own)


class ConfigError(ValueError):
    """Raised for unreadable or malformed ``[tool.opass-lint]`` tables."""


_KEYS = {
    "layers": "layers",
    "wallclock-allow": "wallclock_allow",
    "remove-allow": "remove_allow",
    "float-eq-helpers": "float_eq_helpers",
    "float-attrs": "float_attrs",
    "scopes": "scopes",
    "exclude": "exclude",
    "pure-modules": "pure_modules",
    "protected-types": "protected_types",
    "decision-packages": "decision_packages",
    "worker-entrypoints": "worker_entrypoints",
    "kernel-modules": "kernel_modules",
    "shared-view-factories": "shared_view_factories",
    "cost-contracts": "cost_contracts",
    "small-axes": "small_axes",
    "contract-echo": "contract_echo",
    "extra-paths": "extra_paths",
    "extra-rules": "extra_rules",
}


def config_from_table(table: dict[str, object]) -> LintConfig:
    """Build a :class:`LintConfig` from a ``[tool.opass-lint]`` mapping."""
    kwargs: dict[str, object] = {}
    for key, value in table.items():
        attr = _KEYS.get(key)
        if attr is None:
            raise ConfigError(
                f"unknown [tool.opass-lint] key {key!r} (known: {sorted(_KEYS)})"
            )
        if attr == "layers":
            if not isinstance(value, dict) or not all(
                isinstance(k, str) and isinstance(v, int) for k, v in value.items()
            ):
                raise ConfigError("layers must map package names to integer ranks")
            kwargs["layers"] = dict(value)
        elif attr == "cost_contracts":
            if not isinstance(value, dict) or not all(
                isinstance(k, str) and isinstance(v, str) for k, v in value.items()
            ):
                raise ConfigError(
                    "cost-contracts must map function keys to budget strings"
                )
            for fn_key, budget in value.items():
                if budget not in COST_BUDGET_LEVELS:
                    raise ConfigError(
                        f"cost-contracts[{fn_key!r}]: unknown budget {budget!r} "
                        f"(known: {sorted(COST_BUDGET_LEVELS)})"
                    )
            contracts = dict(DEFAULT_COST_CONTRACTS)
            contracts.update(value)
            kwargs["cost_contracts"] = contracts
        elif attr == "contract_echo":
            if not isinstance(value, list) or not all(
                isinstance(entry, dict) for entry in value
            ):
                raise ConfigError(
                    "contract-echo must be an array of tables "
                    "(work, per, max-growth, note)"
                )
            echo: list[dict[str, object]] = []
            for entry in value:
                unknown = set(entry) - {"work", "per", "max-growth", "note"}
                if unknown or "work" not in entry or "max-growth" not in entry:
                    raise ConfigError(
                        "each contract-echo entry needs work and max-growth "
                        f"(and optionally per, note); got {sorted(entry)}"
                    )
                echo.append(dict(entry))
            kwargs["contract_echo"] = tuple(echo)
        elif attr == "scopes":
            if not isinstance(value, dict):
                raise ConfigError("scopes must map rule ids to package lists")
            scopes: dict[str, tuple[str, ...] | None] = dict(DEFAULT_SCOPES)
            for rule, pkgs in value.items():
                if not isinstance(pkgs, list) or not all(
                    isinstance(p, str) for p in pkgs
                ):
                    raise ConfigError(f"scopes[{rule!r}] must be a list of packages")
                scopes[rule] = tuple(pkgs)
            kwargs["scopes"] = scopes
        else:
            if not isinstance(value, list) or not all(
                isinstance(v, str) for v in value
            ):
                raise ConfigError(f"{key} must be a list of strings")
            kwargs[attr] = tuple(value)
    return LintConfig(**kwargs)  # type: ignore[arg-type]


def load_config(pyproject: str | Path) -> LintConfig:
    """Load ``[tool.opass-lint]`` from a ``pyproject.toml`` file.

    Missing file or missing table → the built-in defaults.
    """
    path = Path(pyproject)
    if not path.is_file():
        return LintConfig()
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"cannot parse {path}: {exc}") from exc
    table = data.get("tool", {}).get("opass-lint")
    if table is None:
        return LintConfig()
    if not isinstance(table, dict):
        raise ConfigError("[tool.opass-lint] must be a table")
    return config_from_table(table)


def find_pyproject(start: str | Path) -> Path | None:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    here = Path(start).resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
