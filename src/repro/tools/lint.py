"""Command-line front end: ``python -m repro.tools.lint [paths...]``.

Exit codes:

* ``0`` — no unsuppressed violations;
* ``1`` — at least one violation (or an invalid suppression pragma);
* ``2`` — usage/configuration error (missing path, bad config table,
  unparsable target file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .api import ALL_RULES, LintReport, lint_file, lint_paths
from .config import ConfigError, LintConfig, find_pyproject, load_config

EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description=(
            "opass-lint: reproduction-specific static analysis "
            "(determinism, layering, hot paths)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--interprocedural",
        action="store_true",
        help="also run the OPS101-OPS103 project-wide rules "
        "(same engine as python -m repro.tools.verify)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress violations recorded in this baseline file",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml with a [tool.opass-lint] table "
        "(default: nearest pyproject.toml above the first path)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the report to FILE (useful for CI artifacts)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, description in sorted(ALL_RULES.items()):
            print(f"{rule_id}  {description}")
        return EXIT_OK

    try:
        if args.config is not None:
            config = load_config(args.config)
        else:
            pyproject = find_pyproject(Path(args.paths[0]))
            config = load_config(pyproject) if pyproject else LintConfig()
    except ConfigError as exc:
        print(f"opass-lint: config error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    for path in args.paths:
        if not Path(path).exists():
            print(f"opass-lint: no such path: {path}", file=sys.stderr)
            return EXIT_ERROR

    try:
        report = lint_paths(list(args.paths), config=config)
        if args.interprocedural:
            from .verify import verify_paths

            report.extend(verify_paths(list(args.paths), config=config))
            report.files_checked //= 2  # same files, two passes
            report.sort()
    except SyntaxError as exc:
        print(f"opass-lint: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.baseline is not None:
        from .baseline import apply_baseline

        try:
            apply_baseline(args.baseline, report)
        except (OSError, ValueError) as exc:
            print(f"opass-lint: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_ERROR

    if args.format == "sarif":
        from .sarif import to_sarif_json

        rendered = to_sarif_json(report)
    elif args.format == "json":
        rendered = report.to_json()
    else:
        rendered = report.render()
    print(rendered)
    if args.output is not None:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return EXIT_OK if report.ok else EXIT_VIOLATIONS


# re-exported for convenience so `from repro.tools.lint import lint_file` works
__all__ = ["EXIT_ERROR", "EXIT_OK", "EXIT_VIOLATIONS", "LintReport", "lint_file", "main"]


if __name__ == "__main__":
    sys.exit(main())
