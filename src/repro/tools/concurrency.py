"""Concurrency and float-identity rules OPS201–OPS204 (`opass-verify`).

PR 6 moved the hot solve path onto shared-memory fork workers
(:mod:`repro.parallel.pool`) and numpy kernels whose contract is
bit-for-bit identity with the reference solvers.  This pass rides the
same fixed-point summaries as OPS101–OPS103 and machine-checks the two
failure modes those rules are blind to — fork boundaries and float
semantics:

* **OPS201 — fork safety.**  Any function registered as a worker
  entrypoint (``worker-entrypoints`` in ``[tool.opass-lint]``) must not
  *transitively* reach fork-unsafe state: open file handles, sockets,
  locks/threads, live RNG machinery, or functions that rebind module
  globals.  Violations name the capture chain like OPS103 does.
* **OPS202 — shared-memory write discipline.**  Worker-reachable code
  may write only into declared per-dispatch slice views (results of a
  ``shared-view-factories`` callable, ``numpy.frombuffer`` by default).
  Writes into parameters (parent-process objects), module-level state,
  or a view whose ``(buffer, offset)`` expression collides with another
  declared view are flagged.
* **OPS203 — float-identity preservation.**  Inside registered kernel
  modules (``kernel-modules``, same prefix machinery as
  ``pure_modules``): a dtype lattice forbids implicit float32/float16/
  object promotion, ``int / int`` true division is flagged as drift,
  and reassociating reductions (``np.sum``, ``np.dot``, ``.mean()`` …)
  are banned unless the line carries an explicit waiver::

      n = int(lens.sum())  # opass: reassoc-ok -- int64 sum, addition is exact

  A waiver without a reason is itself reported as OPS000.
* **OPS204 — blocking calls in async code.**  Sync sleeps, file I/O,
  ``subprocess``, socket connects and pool/process joins reachable from
  an ``async def`` (directly or through sync project callees) stall the
  event loop; this seeds the ROADMAP online-scheduling service work.

Reachability (OPS201/OPS202/OPS204) follows only *confidently resolved*
call edges — plain dotted calls and method calls with a typed receiver.
The dynamic-dispatch fallback (every class method sharing a bare method
name) is deliberately excluded: following it would make ``conn.recv()``
reach every ``recv`` in the project and drown the rules in false
positives.  Every violation is attributed to a concrete line in the
module under check, so the per-line suppression pragmas and the
per-module check cache work unchanged.
"""

from __future__ import annotations

import ast

from .callgraph import CallRef, FunctionDecl, ModuleDecl, ResolvedCall
from .config import LintConfig
from .interproc import _package_of
from .model import Violation, marker_lines
from .summaries import TAINT_RNG, ProjectSummaries, external_taint

#: rule id → one-line description (merged into ``--list-rules``).
CONCURRENCY_RULES: dict[str, str] = {
    "OPS201": "fork worker transitively reaches fork-unsafe state",
    "OPS202": "worker write escapes the declared shared-memory slice views",
    "OPS203": "float-identity drift in a bit-identical kernel module",
    "OPS204": "blocking call reachable from async code",
}

#: External callables whose *result or side effect* is fork-unsafe state:
#: handles, sockets, locks and threads do not survive (or must not cross)
#: an ``os.fork`` boundary.
_FORK_UNSAFE_CALLS: dict[str, str] = {
    "open": "opens a file handle",
    "io.open": "opens a file handle",
    "os.open": "opens a file descriptor",
    "os.fdopen": "opens a file handle",
    "os.pipe": "opens a pipe",
    "tempfile.NamedTemporaryFile": "opens a file handle",
    "tempfile.TemporaryFile": "opens a file handle",
    "socket.socket": "opens a socket",
    "socket.create_connection": "opens a socket",
    "threading.Lock": "allocates a lock",
    "threading.RLock": "allocates a lock",
    "threading.Condition": "allocates a condition variable",
    "threading.Semaphore": "allocates a semaphore",
    "threading.BoundedSemaphore": "allocates a semaphore",
    "threading.Event": "allocates an event",
    "threading.Barrier": "allocates a barrier",
    "threading.Thread": "starts thread machinery",
    "multiprocessing.Lock": "allocates a lock",
    "multiprocessing.RLock": "allocates a lock",
    "subprocess.Popen": "spawns a subprocess",
    "subprocess.run": "spawns a subprocess",
    "subprocess.call": "spawns a subprocess",
    "subprocess.check_call": "spawns a subprocess",
    "subprocess.check_output": "spawns a subprocess",
}

#: External callables that block the calling thread (OPS204).
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "synchronous sleep",
    "open": "synchronous file I/O",
    "io.open": "synchronous file I/O",
    "os.system": "spawns and waits on a shell",
    "os.wait": "waits on a child process",
    "os.waitpid": "waits on a child process",
    "subprocess.run": "waits on a subprocess",
    "subprocess.call": "waits on a subprocess",
    "subprocess.check_call": "waits on a subprocess",
    "subprocess.check_output": "waits on a subprocess",
    "subprocess.Popen": "spawns a subprocess",
    "socket.create_connection": "synchronous socket connect",
    "urllib.request.urlopen": "synchronous HTTP request",
}

#: Bound-method names that block: ``.join()`` with zero args is a pool /
#: process / thread join (``str.join`` always takes one argument).
_BLOCKING_METHODS = frozenset({"acquire", "recv", "recv_bytes"})

#: numpy dtype tails that break the float64/int64 identity contract.
_BAD_DTYPES = frozenset(
    {
        "float32",
        "float16",
        "half",
        "single",
        "longdouble",
        "float128",
        "object",
        "object_",
        "str_",
    }
)

#: numpy constructors with a positional dtype parameter (index).
_DTYPE_POSITIONS: dict[str, int] = {
    "numpy.array": 1,
    "numpy.asarray": 1,
    "numpy.ascontiguousarray": 1,
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.empty": 1,
    "numpy.full": 2,
    "numpy.frombuffer": 1,
    "numpy.fromiter": 1,
}

#: Reductions whose float result depends on accumulation order.
_REDUCTION_CALLS = frozenset(
    {
        "numpy.sum",
        "numpy.nansum",
        "numpy.dot",
        "numpy.vdot",
        "numpy.inner",
        "numpy.matmul",
        "numpy.einsum",
        "numpy.prod",
        "numpy.mean",
        "numpy.std",
        "numpy.var",
        "numpy.add.reduce",
        "numpy.multiply.reduce",
        "math.fsum",
    }
)
_REDUCTION_METHODS = frozenset({"sum", "dot", "prod", "mean", "std", "var", "trace"})


def _confident_targets(ref: CallRef, rc: ResolvedCall) -> list[FunctionDecl]:
    """Project targets excluding the dynamic-dispatch (bare-name) fallback."""
    if ref.kind == "method" and ref.recv_type is None:
        return []
    return rc.targets


def worker_reachable(
    summaries: ProjectSummaries, config: LintConfig
) -> dict[str, tuple[str, ...]]:
    """Function key → call chain (entrypoint .. key) for worker-reachable code."""
    out: dict[str, tuple[str, ...]] = {}
    for entry in config.worker_entrypoints:
        if entry not in summaries.locals:
            continue
        stack: list[tuple[str, tuple[str, ...]]] = [(entry, (entry,))]
        while stack:
            key, chain = stack.pop()
            if key in out:
                continue
            out[key] = chain
            local = summaries.locals[key]
            for ref, rc in zip(local.calls, summaries.resolved.get(key, [])):
                for target in _confident_targets(ref, rc):
                    if target.key in summaries.locals and target.key not in out:
                        stack.append((target.key, chain + (target.key,)))
    return out


def _fork_unsafe_reasons(key: str, summaries: ProjectSummaries) -> list[str]:
    """Direct (non-transitive) fork-unsafe facts about one function."""
    local = summaries.locals.get(key)
    if local is None:
        return []
    reasons: list[str] = []
    if local.global_writes:
        names = ", ".join(local.global_writes)
        reasons.append(f"rebinds module global(s) {names}")
    for ref, rc in zip(local.calls, summaries.resolved.get(key, [])):
        if rc.external is None:
            continue
        label = _FORK_UNSAFE_CALLS.get(rc.external)
        if label is not None:
            reasons.append(f"{label} ({rc.external})")
        elif TAINT_RNG in external_taint(rc.external, ref.nargs):
            reasons.append(f"constructs live RNG machinery ({rc.external})")
    return reasons


def _check_fork_safety(
    decl: ModuleDecl,
    summaries: ProjectSummaries,
    config: LintConfig,
    violation,
) -> None:
    """OPS201: entrypoints in this module must not reach fork-unsafe state."""
    entrypoints = set(config.worker_entrypoints)
    for fn in decl.functions.values():
        if fn.key not in entrypoints:
            continue
        # BFS with parent chains, rooted at this entrypoint only
        chains: dict[str, tuple[str, ...]] = {fn.key: ()}
        stack: list[str] = [fn.key]
        order: list[str] = []
        while stack:
            key = stack.pop()
            order.append(key)
            local = summaries.locals.get(key)
            if local is None:
                continue
            for ref, rc in zip(local.calls, summaries.resolved.get(key, [])):
                for target in _confident_targets(ref, rc):
                    if target.key in summaries.locals and target.key not in chains:
                        chains[target.key] = chains[key] + (target.key,)
                        stack.append(target.key)
        for key in sorted(order):
            for reason in _fork_unsafe_reasons(key, summaries):
                chain = chains[key]
                where = "" if not chain else f" in {key} (via {' -> '.join(chain)})"
                violation(
                    "OPS201",
                    fn.node,
                    f"fork worker '{fn.local_qualname}' reaches fork-unsafe "
                    f"state: {reason}{where}",
                )


def _module_global_names(tree: ast.Module) -> set[str]:
    """Names bound by module-level assignments (import-time state)."""
    out: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for t in targets:
            if isinstance(t, (ast.Tuple, ast.List)):
                targets.extend(t.elts)
            elif isinstance(t, ast.Name):
                out.add(t.id)
    return out


def _write_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    else:
        return []
    out: list[ast.expr] = []
    while targets:
        t = targets.pop()
        if isinstance(t, (ast.Tuple, ast.List)):
            targets.extend(t.elts)
        elif isinstance(t, ast.Starred):
            targets.append(t.value)
        else:
            out.append(t)
    return out


def _root_name(expr: ast.expr) -> str | None:
    while isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _check_worker_writes(
    decl: ModuleDecl,
    fn: FunctionDecl,
    chain: tuple[str, ...],
    config: LintConfig,
    module_globals: set[str],
    violation,
) -> None:
    """OPS202 for one worker-reachable function body."""
    factories = set(config.shared_view_factories)

    def is_factory(call: ast.Call) -> bool:
        if not isinstance(call.func, (ast.Name, ast.Attribute)):
            return False
        from .astutils import dotted

        name = dotted(call.func)
        return name is not None and decl.expand(name) in factories

    # declared slice views and everything assigned locally
    params = set(fn.params)
    if fn.node.name == "__init__" and fn.params:
        # a constructor initializes a freshly allocated object; its
        # ``self`` cannot pre-date the dispatch, so writes to it are local
        params.discard(fn.params[0])
    assigned: set[str] = set()
    global_decls: set[str] = set()
    view_names: dict[str, int] = {}
    creations: list[dict] = []  # {key, node, written}
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    assigned.add(t.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for t in ast.walk(node.optional_vars):
                if isinstance(t, ast.Name):
                    assigned.add(t.id)
        elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            assigned.add(node.target.id)
        elif isinstance(node, ast.Call) and is_factory(node):
            # overlap key: (buffer expression, offset expression)
            buf = node.args[0] if node.args else None
            offset: ast.expr | None = None
            if len(node.args) > 3:
                offset = node.args[3]
            for kw in node.keywords:
                if kw.arg == "offset":
                    offset = kw.value
            key = (
                ast.dump(buf, annotate_fields=False) if buf is not None else "?",
                ast.dump(offset, annotate_fields=False) if offset is not None else "0",
            )
            creations.append({"key": key, "node": node, "written": False})
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            for t in _write_targets(node):
                if isinstance(t, ast.Name):
                    assigned.add(t.id)
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(value, ast.Call)
                and is_factory(value)
            ):
                # creations for this call gets appended by the walk; map by id
                view_names[node.targets[0].id] = id(value)

    by_call_id = {id(c["node"]): c for c in creations}
    where = (
        "" if len(chain) <= 1 else f" (worker-reachable via {' -> '.join(chain)})"
    )

    for node in ast.walk(fn.node):
        for t in _write_targets(node) if isinstance(node, ast.stmt) else []:
            if not isinstance(t, (ast.Attribute, ast.Subscript)):
                continue
            if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Call):
                if is_factory(t.value):
                    creation = by_call_id.get(id(t.value))
                    if creation is not None:
                        creation["written"] = True
                    continue
            root = _root_name(t)
            if root is None:
                continue
            if root in view_names:
                creation = by_call_id.get(view_names[root])
                if creation is not None:
                    creation["written"] = True
                continue
            if root in global_decls or root in module_globals:
                violation(
                    "OPS202",
                    t,
                    f"worker code writes module-level state '{root}' instead "
                    f"of a declared shared-memory slice view{where}",
                )
            elif root in params and root not in assigned:
                violation(
                    "OPS202",
                    t,
                    f"worker code writes into parameter '{root}' — a "
                    f"parent-process object, not a declared np.frombuffer "
                    f"slice view{where}",
                )

    # overlapping declared views: two creations over the same
    # (buffer, offset) expression where at least one is written
    groups: dict[tuple[str, str], list[dict]] = {}
    for c in creations:
        groups.setdefault(c["key"], []).append(c)
    for group in groups.values():
        if len(group) < 2:
            continue
        for c in group:
            if c["written"]:
                violation(
                    "OPS202",
                    c["node"],
                    "written slice view overlaps another declared view over "
                    "the same (buffer, offset) expression; worker writes "
                    f"must target disjoint slices{where}",
                )


def _int_names(fn: FunctionDecl):
    """(int-typed names, is_int predicate) for one function (tiny lattice)."""
    ints: set[str] = set()
    for name, ann in zip(fn.params, fn.param_annotation_nodes):
        if isinstance(ann, ast.Name) and ann.id == "int":
            ints.add(name)

    def is_int(e: ast.expr) -> bool:
        if isinstance(e, ast.Constant):
            return type(e.value) is int
        if isinstance(e, ast.Name):
            return e.id in ints
        if isinstance(e, ast.Call) and isinstance(e.func, ast.Name):
            return e.func.id in {"len", "int", "ord"}
        if isinstance(e, ast.BinOp) and isinstance(
            e.op, (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod)
        ):
            return is_int(e.left) and is_int(e.right)
        if isinstance(e, ast.UnaryOp) and isinstance(e.op, (ast.USub, ast.UAdd)):
            return is_int(e.operand)
        return False

    for _ in range(3):  # propagate through short assignment chains
        changed = False
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id not in ints
                and is_int(node.value)
            ):
                ints.add(node.targets[0].id)
                changed = True
        if not changed:
            break
    return ints, is_int


def _check_float_identity(
    decl: ModuleDecl,
    config: LintConfig,
    reassoc_lines: set[int],
    violation,
) -> None:
    """OPS203 over one registered kernel module."""
    from .astutils import dotted

    def expanded(func: ast.expr) -> str | None:
        if not isinstance(func, (ast.Name, ast.Attribute)):
            return None
        name = dotted(func)
        return decl.expand(name) if name is not None else None

    def dtype_label(e: ast.expr) -> str | None:
        """The forbidden dtype an expression names, if any."""
        if isinstance(e, ast.Constant) and isinstance(e.value, str):
            return e.value if e.value in _BAD_DTYPES else None
        if isinstance(e, ast.Name) and e.id == "object":
            return "object"
        target = expanded(e)
        if target is not None:
            tail = target.rsplit(".", 1)[-1]
            if target.startswith("numpy.") and tail in _BAD_DTYPES:
                return tail
        return None

    # dtype lattice + reductions, module-wide
    for node in ast.walk(decl.tree):
        if not isinstance(node, ast.Call):
            continue
        target = expanded(node.func)
        # direct scalar constructors: np.float32(x)
        if target is not None and target.startswith("numpy."):
            tail = target.rsplit(".", 1)[-1]
            if tail in _BAD_DTYPES:
                violation(
                    "OPS203",
                    node,
                    f"numpy.{tail} breaks the float64/int64 identity "
                    "contract (implicit precision/object promotion)",
                )
                continue
        # dtype= arguments
        dtype_arg: ast.expr | None = None
        if target in _DTYPE_POSITIONS and len(node.args) > _DTYPE_POSITIONS[target]:
            dtype_arg = node.args[_DTYPE_POSITIONS[target]]
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            dtype_arg = node.args[0]
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype_arg = kw.value
        if dtype_arg is not None:
            label = dtype_label(dtype_arg)
            if label is not None:
                violation(
                    "OPS203",
                    node,
                    f"dtype {label!r} breaks the float64/int64 identity "
                    "contract (implicit precision/object promotion)",
                )
        # reassociating reductions
        is_reduction = target in _REDUCTION_CALLS
        name = None
        if is_reduction:
            name = target
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _REDUCTION_METHODS
            and (target is None or not target.startswith(("numpy.", "math.")))
        ):
            is_reduction = True
            name = f".{node.func.attr}()"
        if is_reduction and node.lineno not in reassoc_lines:
            violation(
                "OPS203",
                node,
                f"reassociating reduction {name} without a declared stable "
                "order; annotate `# opass: reassoc-ok -- <why>` if the "
                "accumulation order is provably fixed or exact",
            )

    # int / int true division per function
    for fn in decl.functions.values():
        ints, is_int = _int_names(fn)
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Div)
                and is_int(node.left)
                and is_int(node.right)
            ):
                violation(
                    "OPS203",
                    node,
                    "int/int true division produces a float the reference "
                    "solver never sees; use // or make a side explicitly "
                    "float",
                )


def _blocking_chain(
    key: str,
    summaries: ProjectSummaries,
    memo: dict[str, tuple[str, tuple[str, ...]] | None],
    stack: set[str],
) -> tuple[str, tuple[str, ...]] | None:
    """(reason, chain starting at ``key``) if ``key`` can block, else None."""
    if key in memo:
        return memo[key]
    if key in stack:
        return None
    local = summaries.locals.get(key)
    if local is None:
        memo[key] = None
        return None
    stack.add(key)
    result: tuple[str, tuple[str, ...]] | None = None
    for ref, rc in zip(local.calls, summaries.resolved.get(key, [])):
        if rc.external is not None and rc.external in _BLOCKING_CALLS:
            result = (f"{_BLOCKING_CALLS[rc.external]} ({rc.external})", (key,))
            break
        if result is None:
            for target in _confident_targets(ref, rc):
                if isinstance(target.node, ast.AsyncFunctionDef):
                    continue
                sub = _blocking_chain(target.key, summaries, memo, stack)
                if sub is not None:
                    result = (sub[0], (key,) + sub[1])
                    break
        if result is not None:
            break
    stack.discard(key)
    memo[key] = result
    return result


def _check_async_blocking(
    decl: ModuleDecl,
    summaries: ProjectSummaries,
    violation,
) -> None:
    """OPS204: blocking work reachable from this module's ``async def``s."""
    memo: dict[str, tuple[str, tuple[str, ...]] | None] = {}
    for fn in decl.functions.values():
        if not isinstance(fn.node, ast.AsyncFunctionDef):
            continue
        local = summaries.locals.get(fn.key)
        if local is None:
            continue
        for ref, rc in zip(local.calls, summaries.resolved.get(fn.key, [])):
            site = ast.Name(id="x")  # placeholder location carrier
            site.lineno, site.col_offset = ref.line, max(ref.col - 1, 0)
            if rc.external is not None and rc.external in _BLOCKING_CALLS:
                violation(
                    "OPS204",
                    site,
                    f"{_BLOCKING_CALLS[rc.external]} ({rc.external}) blocks "
                    f"the event loop inside async '{fn.local_qualname}'",
                )
                continue
            if ref.kind == "method" and not rc.targets:
                if ref.target in _BLOCKING_METHODS or (
                    ref.target == "join" and ref.nargs == 0
                ):
                    violation(
                        "OPS204",
                        site,
                        f"'.{ref.target}()' may block the event loop inside "
                        f"async '{fn.local_qualname}'",
                    )
                continue
            for target in _confident_targets(ref, rc):
                if isinstance(target.node, ast.AsyncFunctionDef):
                    continue
                sub = _blocking_chain(target.key, summaries, memo, set())
                if sub is not None:
                    reason, chain = sub
                    violation(
                        "OPS204",
                        site,
                        f"blocking call reachable from async "
                        f"'{fn.local_qualname}': {reason} via "
                        f"{' -> '.join(chain)}",
                    )
                    break


def check_module_concurrency(
    decl: ModuleDecl,
    summaries: ProjectSummaries,
    config: LintConfig | None = None,
    *,
    source: str | None = None,
) -> list[Violation]:
    """Run OPS201–OPS204 over one module using project-wide summaries.

    ``source`` (when available) is scanned for ``reassoc-ok`` waivers;
    without it OPS203's reduction ban has no waiver mechanism, so pass it
    whenever the module text is at hand.
    """
    config = config if config is not None else LintConfig()
    out: list[Violation] = []
    package = _package_of(decl.module)

    def violation(rule: str, node: ast.AST, message: str) -> None:
        out.append(
            Violation(
                file=decl.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    # grammar errors in pragmas are OPS000s owned by apply_suppressions
    # (one report per file, shared with every other pass); a bare marker
    # simply waives nothing here.
    reassoc_lines: set[int] = set()
    if source is not None:
        reassoc_lines = marker_lines(source, "reassoc-ok")

    if config.in_scope("OPS201", package):
        _check_fork_safety(decl, summaries, config, violation)

    if config.in_scope("OPS202", package):
        reachable = worker_reachable(summaries, config)
        module_globals = _module_global_names(decl.tree)
        for fn in decl.functions.values():
            chain = reachable.get(fn.key)
            if chain is not None:
                _check_worker_writes(
                    decl, fn, chain, config, module_globals, violation
                )

    kernel = any(
        decl.module == k or decl.module.startswith(k + ".")
        for k in config.kernel_modules
    )
    if kernel and config.in_scope("OPS203", package):
        _check_float_identity(decl, config, reassoc_lines, violation)

    if config.in_scope("OPS204", package):
        _check_async_blocking(decl, summaries, violation)

    return out
