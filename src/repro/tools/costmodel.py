"""Cost-contract rules OPS301–OPS304 (`opass-verify`).

PRs 4–6 bought the hot paths their asymptotics — O(|path|) allocator
updates, amortized-O(deg) CSR re-matching, lazy completion heaps — but
nothing *enforced* them: one innocent ``list(...)`` inside
``ComponentAllocator.solve`` silently reverts a 30× win, and only a
noisy bench regression would notice.  This pass rides the same
fixed-point summaries as OPS101–OPS103 and checks declared **cost
contracts** (``cost-contracts`` in ``[tool.opass-lint]``, defaults in
:mod:`repro.tools.config`) on the hot-path functions:

* **OPS301 — allocation over budget.**  A scaling allocation (container
  build, comprehension, ``np.*`` constructor, string concat in a loop)
  inside a contracted function whose cost — enclosing loop axes plus the
  build's own size — exceeds the declared budget, and which carries no
  ``# opass: alloc-ok -- <why>`` waiver.  Waived sites are excluded from
  the fixed point entirely, so an amortization argument made once stays
  compositional.
* **OPS302 — call over the per-iteration budget.**  A call whose
  summarized cost, added to the loop depth it sits under, exceeds the
  caller's budget (calling O(E) ``rebuild`` from an O(deg) amortized
  path).  The violation names the chain OPS103-style::

      in solve (via _repartition -> _bfs): O(n) list() build at line 88

* **OPS303 — known quadratic shapes.**  Inside contracted loops:
  ``in``/``.index()``/``.remove()`` on list-typed parameters, repeated
  ``+=`` container/string growth, and nested iteration over the same
  axis.
* **OPS304 — contract echo.**  ``python -m repro.tools.verify
  --contracts-check BENCH_*.json`` reads the deterministic work counters
  the bench harnesses emit and fails if measured work-per-event growth
  across scales contradicts a declared bound (``contract-echo`` in the
  config) — the static claim cross-checked by dynamic evidence.

The cost lattice is deliberately an *under*-approximation: cost comes
only from allocation and call sites, loops over axes named in
``small-axes`` charge O(deg) (so ``for f in component.flows`` is charged
to the component, not the world), and a pure loop with neither
allocations nor calls contributes nothing.  Fewer false positives; the
bench echo (OPS304) backstops what the static side under-counts.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path

from .callgraph import FunctionDecl, ModuleDecl
from .concurrency import _confident_targets
from .config import COST_BUDGET_LEVELS, LintConfig
from .interproc import _package_of
from .model import Violation
from .summaries import AllocSite, ProjectSummaries, axis_of

#: rule id → one-line description (merged into ``--list-rules``).
COST_RULES: dict[str, str] = {
    "OPS301": "scaling allocation exceeds the declared cost budget",
    "OPS302": "summarized callee cost exceeds the caller's per-iteration budget",
    "OPS303": "known quadratic shape inside a cost-contracted function",
    "OPS304": "bench counter growth contradicts a declared cost contract",
}

#: Lattice level → rendered bound.  Nested composition sums levels, so
#: an O(n) build under an O(n) loop lands at 4; everything above the
#: lattice top is reported as ``>O(n^2)``.
LEVEL_NAMES: dict[int, str] = {
    0: "O(1)",
    1: "O(deg)",
    2: "O(n)",
    3: "O(n log n)",
    4: "O(n^2)",
    5: ">O(n^2)",
}
MAX_LEVEL = 5

#: Special axis tokens recorded by :func:`repro.tools.summaries.axis_of`.
_SPECIAL_AXIS_LEVELS: dict[str, int] = {
    "<const>": 0,  # syntactically fixed size
    "<element>": 1,  # one subscripted element of a container
    "<str>": 1,  # one string operand
    "<while>": 2,  # data-dependent trip count: assume linear
    "<unknown>": 2,  # cannot bound it: assume linear
}


def axis_level(axis: str, config: LintConfig) -> int:
    """Lattice level of one iteration axis token under this config."""
    special = _SPECIAL_AXIS_LEVELS.get(axis)
    if special is not None:
        return special
    return 1 if axis in config.small_axes else 2


def _axes_level(axes: tuple[str, ...], config: LintConfig) -> int:
    return min(MAX_LEVEL, sum(axis_level(a, config) for a in axes))


def site_level(site: AllocSite, config: LintConfig) -> int:
    """Total lattice level of one allocation site (loops + own size)."""
    return min(
        MAX_LEVEL,
        _axes_level(site.axes, config) + _axes_level(site.own, config),
    )


def _short(key: str) -> str:
    """``repro.simulate.components.ComponentAllocator.solve`` → readable tail."""
    parts = key.split(".")
    if len(parts) >= 2 and parts[-2][:1].isupper():
        return ".".join(parts[-2:])
    return parts[-1]


def _describe_site(site: AllocSite, config: LintConfig) -> str:
    own = _axes_level(site.own, config)
    desc = f"{LEVEL_NAMES[own]} {site.kind} at line {site.line}"
    if site.axes:
        desc += " under a loop over " + " -> ".join(site.axes)
    return desc


@dataclass(frozen=True)
class Cost:
    """Summarized worst-case cost of one function, with its witness."""

    level: int
    #: human description of the dominating allocation site.
    witness: str = ""
    #: function keys from the function itself down to the witness holder.
    chain: tuple[str, ...] = ()


def resolve_costs(
    summaries: ProjectSummaries, config: LintConfig
) -> dict[str, Cost]:
    """Interprocedural cost fixed point over the whole project.

    ``cost(f)`` is the max over f's unwaived allocation sites (enclosing
    loop axes plus the build's own size) and call sites (loop depth plus
    ``cost(callee)``, following only confidently resolved edges).  Calls
    to cost-0 functions contribute nothing regardless of depth — a pure
    O(1) helper under a loop is the loop's business, and pure loops are
    deliberately not floored (under-approximation, see module docstring).
    Levels only grow and are clamped at :data:`MAX_LEVEL`, so iteration
    terminates even through recursion cycles.
    """
    costs: dict[str, Cost] = {key: Cost(0) for key in summaries.locals}
    changed = True
    while changed:
        changed = False
        for key, local in summaries.locals.items():
            best = costs[key]
            for site in local.allocs:
                if site.waived:
                    continue
                level = site_level(site, config)
                if level > best.level:
                    best = Cost(level, _describe_site(site, config), (key,))
            resolved = summaries.resolved.get(key, [])
            for i, (ref, rc) in enumerate(zip(local.calls, resolved)):
                axes = local.call_axes[i] if i < len(local.call_axes) else ()
                depth = _axes_level(axes, config)
                for target in _confident_targets(ref, rc):
                    sub = costs.get(target.key)
                    if sub is None or sub.level == 0 or target.key == key:
                        continue
                    level = min(MAX_LEVEL, depth + sub.level)
                    if level > best.level:
                        best = Cost(level, sub.witness, (key,) + sub.chain)
            if best.level > costs[key].level:
                costs[key] = best
                changed = True
    return costs


def _list_params(fn: FunctionDecl) -> set[str]:
    """Parameter names annotated as plain lists (OPS303 scan targets)."""
    out: set[str] = set()
    for name, ann in zip(fn.params, fn.param_annotation_nodes):
        root = ann
        if isinstance(root, ast.Subscript):
            root = root.value
        if isinstance(root, ast.Name) and root.id in {"list", "List"}:
            out.add(name)
    return out


#: ``+=`` values that grow a container or string (quadratic in a loop).
def _is_growth_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.ListComp, ast.GeneratorExp)):
        return True
    if isinstance(value, ast.JoinedStr):
        return True
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in {"list", "tuple", "sorted"}
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
        return _is_growth_value(value.left) or _is_growth_value(value.right)
    return False


def _check_quadratic_shapes(
    fn: FunctionDecl,
    budget_str: str,
    config: LintConfig,
    violation,
) -> None:
    """OPS303 over one contracted function body."""
    list_params = _list_params(fn)
    stack: list[str] = []

    def scan(node: ast.AST) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ) and node is not fn.node:
            return
        in_loop = any(axis_level(a, config) > 0 for a in stack)
        if in_loop:
            if isinstance(node, ast.Compare):
                for op, comp in zip(node.ops, node.comparators):
                    if (
                        isinstance(op, (ast.In, ast.NotIn))
                        and isinstance(comp, ast.Name)
                        and comp.id in list_params
                    ):
                        violation(
                            "OPS303",
                            node,
                            f"membership test on list parameter '{comp.id}' "
                            f"inside a loop scans the list each iteration — "
                            f"quadratic under '{fn.local_qualname}'s "
                            f"{budget_str} contract; use a set or dict",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"index", "remove"}
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in list_params
            ):
                violation(
                    "OPS303",
                    node,
                    f"'.{node.func.attr}()' on list parameter "
                    f"'{node.func.value.id}' inside a loop scans the list "
                    f"each iteration — quadratic under "
                    f"'{fn.local_qualname}'s {budget_str} contract",
                )
            elif (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Name)
                and _is_growth_value(node.value)
            ):
                violation(
                    "OPS303",
                    node,
                    f"repeated '+=' growth of '{node.target.id}' inside a "
                    f"loop reallocates the whole container each iteration — "
                    f"quadratic under '{fn.local_qualname}'s {budget_str} "
                    f"contract; append (or ''.join) instead",
                )

        if isinstance(node, (ast.For, ast.AsyncFor)):
            scan(node.iter)
            axis = axis_of(node.iter)
            if not axis.startswith("<") and axis in stack:
                violation(
                    "OPS303",
                    node,
                    f"nested iteration over the same axis '{axis}' is "
                    f"quadratic in that axis — over "
                    f"'{fn.local_qualname}'s {budget_str} contract",
                )
            stack.append(axis)
            for child in (*node.body, *node.orelse):
                scan(child)
            stack.pop()
            return
        if isinstance(node, ast.While):
            stack.append("<while>")
            scan(node.test)
            for child in (*node.body, *node.orelse):
                scan(child)
            stack.pop()
            return
        for child in ast.iter_child_nodes(node):
            scan(child)

    scan(fn.node)


def check_module_cost(
    decl: ModuleDecl,
    summaries: ProjectSummaries,
    costs: dict[str, Cost],
    config: LintConfig | None = None,
) -> list[Violation]:
    """Run OPS301–OPS303 over one module's contracted functions.

    ``costs`` is the project-wide fixed point from :func:`resolve_costs`
    — a violation in this module may be witnessed by an allocation two
    call levels away in another module, which is why this rides the
    verify engine (and its import-closure cache keys), not plain lint.
    """
    config = config if config is not None else LintConfig()
    out: list[Violation] = []
    package = _package_of(decl.module)

    def violation(rule: str, node: ast.AST, message: str) -> None:
        out.append(
            Violation(
                file=decl.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    def at(line: int, col: int) -> ast.AST:
        site = ast.Name(id="x")
        site.lineno, site.col_offset = line, max(col - 1, 0)
        return site

    for fn in decl.functions.values():
        budget_str = config.cost_contracts.get(fn.key)
        if budget_str is None:
            continue
        budget = COST_BUDGET_LEVELS.get(budget_str)
        if budget is None:
            continue
        local = summaries.locals.get(fn.key)
        if local is None:
            continue

        if config.in_scope("OPS301", package):
            for site in local.allocs:
                if site.waived:
                    continue
                level = site_level(site, config)
                if level > budget:
                    violation(
                        "OPS301",
                        at(site.line, site.col),
                        f"in {fn.local_qualname}: "
                        f"{_describe_site(site, config)} — "
                        f"{LEVEL_NAMES[level]} exceeds the declared "
                        f"{budget_str} budget; annotate "
                        "`# opass: alloc-ok -- <why>` if the size is "
                        "bounded by contract",
                    )

        if config.in_scope("OPS302", package):
            resolved = summaries.resolved.get(fn.key, [])
            for i, (ref, rc) in enumerate(zip(local.calls, resolved)):
                axes = local.call_axes[i] if i < len(local.call_axes) else ()
                depth = _axes_level(axes, config)
                worst: tuple[int, str, Cost] | None = None
                for target in _confident_targets(ref, rc):
                    sub = costs.get(target.key)
                    if sub is None or sub.level == 0:
                        continue
                    total = min(MAX_LEVEL, depth + sub.level)
                    if total > budget and (worst is None or total > worst[0]):
                        worst = (total, target.key, sub)
                if worst is None:
                    continue
                total, target_key, sub = worst
                via = ""
                if len(sub.chain) > 1:
                    via = f" (via {' -> '.join(_short(k) for k in sub.chain)})"
                under = (
                    f" under a loop over {' -> '.join(axes)}" if axes else ""
                )
                violation(
                    "OPS302",
                    at(ref.line, ref.col),
                    f"in {fn.local_qualname}{via}: {sub.witness}{under} — "
                    f"summarized {LEVEL_NAMES[min(MAX_LEVEL, depth + sub.level)]} "
                    f"call to {_short(target_key)} exceeds the declared "
                    f"{budget_str} budget",
                )

        if config.in_scope("OPS303", package):
            _check_quadratic_shapes(fn, budget_str, config, violation)

    return out


# ---- OPS304: contract echo against bench counters --------------------------


def _echo_rows(data: object) -> list[dict]:
    if isinstance(data, dict):
        data = data.get("scales", [])
    if not isinstance(data, list):
        return []
    return [row for row in data if isinstance(row, dict)]


def check_contract_echo(
    paths: list[str | Path], config: LintConfig | None = None
) -> list[Violation]:
    """OPS304: measured work growth vs the declared bounds.

    Each ``contract-echo`` registry entry names a deterministic work
    counter (``work``), an optional normalizer (``per``) and the maximum
    tolerated growth of the per-unit value across bench scales
    (``max-growth``, ratio of largest to smallest).  A file in which no
    registry entry finds at least two usable rows is itself an error —
    an echo that silently checks nothing is worse than none.
    """
    config = config if config is not None else LintConfig()
    out: list[Violation] = []
    for raw in paths:
        path = str(raw)

        def fail(message: str) -> None:
            out.append(
                Violation(file=path, line=1, col=1, rule="OPS304", message=message)
            )

        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            fail(f"cannot read bench counters: {exc}")
            continue
        rows = _echo_rows(data)
        recognized = 0
        for entry in config.contract_echo:
            work = entry.get("work")
            per = entry.get("per")
            try:
                bound = float(entry.get("max-growth"))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
            values: list[float] = []
            for row in rows:
                if work not in row:
                    continue
                value = float(row[work])  # type: ignore[index]
                if per is not None:
                    denom = float(row.get(per, 0) or 0)  # type: ignore[arg-type]
                    if denom <= 0:
                        continue
                    value /= denom
                values.append(value)
            if len(values) < 2:
                continue
            recognized += 1
            low, high = min(values), max(values)
            if low <= 0:
                growth = float("inf") if high > 0 else 1.0
            else:
                growth = high / low
            if growth > bound:
                unit = f"'{work}' per '{per}'" if per else f"'{work}'"
                note = entry.get("note", "declared contract")
                fail(
                    f"work counter {unit} grows {growth:.2f}x across bench "
                    f"scales ({low:.3g} -> {high:.3g}), exceeding the "
                    f"{bound:.1f}x bound — {note}"
                )
        if recognized == 0:
            fail(
                "no contract-echo counters recognized (need >= 2 scale rows "
                "carrying a registered 'work' counter); regenerate the bench "
                "JSON or register the counters under [tool.opass-lint] "
                "contract-echo"
            )
    return out
