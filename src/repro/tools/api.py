"""Programmatic entry points for `opass-lint`.

The test suite drives the analyzer through these functions instead of
the CLI so rules can be asserted on in-memory snippets and on the real
tree::

    from repro.tools.api import lint_paths
    report = lint_paths(["src"])
    assert report.ok, report.render()

``lint_source`` accepts an explicit ``module=`` override so fixtures can
pretend to live inside ``repro.simulate`` etc.; standalone fixture files
declare the same thing with a ``# opass-lint: module=...`` directive.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from .checks import RULES, check_module
from .concurrency import CONCURRENCY_RULES
from .config import LintConfig, find_pyproject, load_config
from .costmodel import COST_RULES
from .interproc import INTERPROC_RULES
from .model import Violation, module_directive, parse_suppressions

#: Schema version of the JSON report (bump on breaking changes).
JSON_SCHEMA_VERSION = 1

#: Every rule either front end can emit.  Suppression pragmas validate
#: against this combined table so ignoring an interprocedural rule in a
#: file checked by plain ``opass-lint`` is not itself an OPS000 error.
ALL_RULES: dict[str, str] = {
    **RULES,
    **INTERPROC_RULES,
    **CONCURRENCY_RULES,
    **COST_RULES,
}
KNOWN_RULES = frozenset(ALL_RULES)


@dataclass
class LintReport:
    """The outcome of linting a set of files."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    tool: str = "opass-lint"

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return out

    def extend(self, other: "LintReport") -> None:
        self.violations.extend(other.violations)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked

    def sort(self) -> None:
        key = lambda v: (v.file, v.line, v.col, v.rule)  # noqa: E731
        self.violations.sort(key=key)
        self.suppressed.sort(key=key)

    def render(self) -> str:
        """Human-readable report."""
        self.sort()
        lines = [v.render() for v in self.violations]
        if self.violations:
            by_rule = ", ".join(
                f"{rule}×{n}" for rule, n in sorted(self.counts().items())
            )
            lines.append(
                f"{len(self.violations)} violation(s) in "
                f"{self.files_checked} file(s): {by_rule}"
            )
        else:
            lines.append(
                f"ok: {self.files_checked} file(s) clean "
                f"({len(self.suppressed)} suppressed)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        self.sort()
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": self.tool,
            "files_checked": self.files_checked,
            "ok": self.ok,
            "counts": self.counts(),
            "violations": [v.as_dict() for v in self.violations],
            "suppressed": [v.as_dict() for v in self.suppressed],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)


def _module_from_path(path: Path) -> tuple[str, bool]:
    """Infer the dotted module from a file path (``.../repro/x/y.py``).

    Returns ``(module, is_package)``.  Files outside a ``repro`` tree get
    a synthetic top-level name, which keeps package-scoped rules off.
    """
    parts = list(path.parts)
    is_package = path.name == "__init__.py"
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        mod_parts = parts[start:]
    else:
        mod_parts = [path.name]
    if is_package:
        mod_parts = mod_parts[:-1]
    elif mod_parts[-1].endswith(".py"):
        mod_parts[-1] = mod_parts[-1][: -len(".py")]
    return ".".join(mod_parts), is_package


def apply_suppressions(
    raw: list[Violation], source: str, path: str, *, tool: str = "opass-lint"
) -> LintReport:
    """Split raw violations into reported/suppressed per the file's pragmas."""
    by_line, pragma_errors = parse_suppressions(source, path, KNOWN_RULES)
    report = LintReport(files_checked=1, tool=tool)
    report.violations.extend(pragma_errors)
    for violation in raw:
        pragma = by_line.get(violation.line)
        if pragma is not None and violation.rule in pragma.rules:
            pragma.used.add(violation.rule)
            report.suppressed.append(
                Violation(
                    file=violation.file,
                    line=violation.line,
                    col=violation.col,
                    rule=violation.rule,
                    message=violation.message,
                    suppressed=True,
                    reason=pragma.reason,
                )
            )
        else:
            report.violations.append(violation)
    return report


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
    relaxed: bool = False,
) -> LintReport:
    """Lint one source string; raises SyntaxError on unparsable input.

    ``relaxed`` switches to the extra-paths profile: only the rules in
    ``extra-rules`` fire (regardless of package scope, since bench and
    test files live outside the ``repro`` tree) and OPS001 tolerates
    literal seeds — benches pin seeds on purpose, but must still stay
    free of *unseeded* RNG.
    """
    config = config if config is not None else LintConfig()
    directive = module_directive(source)
    is_package = path.endswith("__init__.py")
    if module is None:
        if directive is not None:
            module = directive
            is_package = False
        else:
            module, is_package = _module_from_path(Path(path))
    tree = ast.parse(source, filename=path)
    raw = check_module(
        tree,
        path=path,
        module=module,
        config=config,
        is_package=is_package,
        relaxed=relaxed,
    )
    return apply_suppressions(raw, source, path)


def _is_relaxed_path(path: Path, config: LintConfig) -> bool:
    """True when ``path`` sits under a configured ``extra-paths`` root."""
    return any(part in config.extra_paths for part in path.parts)


def lint_file(path: str | Path, *, config: LintConfig | None = None) -> LintReport:
    """Lint one file under the *full* profile.

    Profile selection by path happens only in :func:`lint_paths` (the
    CLI/CI entry): fixture tests drive ``lint_file`` on snippets under
    ``tests/data/`` and must keep every rule active.
    """
    p = Path(path)
    source = p.read_text(encoding="utf-8")
    return lint_source(source, path=str(p), config=config)


def _iter_python_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def lint_paths(
    paths: list[str | Path],
    *,
    config: LintConfig | None = None,
) -> LintReport:
    """Lint files and directories (recursively); missing paths raise.

    Files discovered by sweeping a directory under a configured
    ``extra-paths`` root (benchmarks, tests) get the relaxed profile,
    and ``exclude`` patterns prune only swept files.  A file named
    *explicitly* is always linted, under the full profile — pointing
    the linter at one file is a request for the whole rule set (and the
    lint fixture snippets live under the excluded ``tests/data/``).
    """
    if config is None:
        pyproject = find_pyproject(Path(paths[0]) if paths else Path.cwd())
        config = load_config(pyproject) if pyproject else LintConfig()
    report = LintReport()
    for raw in paths:
        p = Path(raw)
        from_sweep = p.is_dir()
        for file in _iter_python_files([p]):
            if from_sweep and any(
                pattern in str(file) for pattern in config.exclude
            ):
                continue
            source = file.read_text(encoding="utf-8")
            report.extend(
                lint_source(
                    source,
                    path=str(file),
                    config=config,
                    relaxed=from_sweep and _is_relaxed_path(file, config),
                )
            )
    report.sort()
    return report
