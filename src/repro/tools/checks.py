"""AST rule implementations (OPS001–OPS006).

Each rule encodes a reproduction-specific invariant that stock linters
cannot express:

* **OPS001** — no unseeded/global RNG.  Randomness must flow through an
  injected ``np.random.Generator``; the process-global ``random`` module
  and ``np.random.<fn>`` convenience functions are banned, and
  ``np.random.default_rng()``/``default_rng(<literal>)`` (unseeded /
  hard-coded fallback seed) must carry a written suppression.
* **OPS002** — no wall-clock reads (``time.time``, ``time.perf_counter``,
  ``datetime.now``, …) inside ``repro.simulate``/``repro.core``.  The
  simulated clock is the only time source; wall-clock instrumentation
  lives in the allow-listed ``repro.simulate.perf``.
* **OPS003** — no iteration over bare ``set``/``frozenset`` values (and
  no ``set.pop()``) without an enclosing ``sorted(...)``: set order is
  hash-seed-dependent, so it must never reach an observable result.
* **OPS004** — no ``==``/``!=`` between float-typed simulation
  quantities (clock readings, rates, byte residues) outside the
  tolerance helpers.
* **OPS005** — hot-path bans: ``list.remove``, ``list.pop(0)``,
  ``list.insert(0, ...)`` and ``+=`` string building inside loops.
* **OPS006** — package-layering DAG enforcement from the declared
  ranking table (``core``/``dfs`` at the bottom, ``simulate`` above,
  ``experiments``/``apps``/``cli`` on top).

The set/str detection is a deliberately small flow-insensitive type
inference: names are classified from literals, constructors,
annotations and ``self.<attr>`` assignments.  It trades soundness for
zero-configuration usefulness — anything it cannot prove is a set or a
str is left alone.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .config import LintConfig
from .model import Violation

#: rule id → one-line description (drives ``--list-rules`` and the docs).
RULES: dict[str, str] = {
    "OPS000": "invalid suppression pragma (missing reason or unknown rule id)",
    "OPS001": "unseeded/global RNG; inject an np.random.Generator instead",
    "OPS002": "wall-clock read inside simulate/core (simulated time only)",
    "OPS003": "iteration over an unordered set/frozenset without sorted(...)",
    "OPS004": "float ==/!= between simulation quantities (use a tolerance)",
    "OPS005": "hot-path ban: list.remove / pop(0) / insert(0,..) / str += in loop",
    "OPS006": "import breaks the package layering DAG",
}

KNOWN_RULES = frozenset(RULES)

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: np.random attributes that are explicitly-seeded machinery, not global
#: state; constructing them is fine.
_SEEDED_RNG_TYPES = frozenset(
    {"Generator", "SeedSequence", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64"}
)

_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
)

_SET_METHODS_RETURNING_SET = frozenset(
    {"copy", "union", "intersection", "difference", "symmetric_difference"}
)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _terminal_name(node: ast.expr) -> str | None:
    """The last component of a Name/Attribute chain (``self.a.b`` → ``b``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _annotation_roots(node: ast.expr | None) -> set[str]:
    """Root type names of an annotation (``set[int] | None`` → {set, None})."""
    out: set[str] = set()
    stack = [node]
    while stack:
        cur = stack.pop()
        if cur is None:
            continue
        if isinstance(cur, ast.Subscript):
            stack.append(cur.value)
        elif isinstance(cur, ast.BinOp) and isinstance(cur.op, ast.BitOr):
            stack.extend([cur.left, cur.right])
        elif isinstance(cur, ast.Name):
            out.add(cur.id)
        elif isinstance(cur, ast.Attribute):
            out.add(cur.attr)
        elif isinstance(cur, ast.Constant) and isinstance(cur.value, str):
            # a quoted annotation — parse its root the cheap way
            out.add(cur.value.split("[", 1)[0].strip())
    return out


@dataclass
class _Env:
    """Known value kinds for one lexical scope."""

    set_names: set[str] = field(default_factory=set)
    str_names: set[str] = field(default_factory=set)
    #: ``self.<attr>`` names known to be sets / strs (class-wide).
    set_attrs: set[str] = field(default_factory=set)
    str_attrs: set[str] = field(default_factory=set)


class _Checker(ast.NodeVisitor):
    """One pass over a module, firing every in-scope rule."""

    def __init__(
        self,
        path: str,
        module: str,
        config: LintConfig,
        *,
        is_package: bool,
        relaxed: bool = False,
    ) -> None:
        self.path = path
        self.module = module
        self.config = config
        self.is_package = is_package
        self.relaxed = relaxed
        self.violations: list[Violation] = []
        parts = module.split(".")
        if parts and parts[0] == "repro" and len(parts) > 1:
            self.package: str | None = parts[1]
        elif parts == ["repro"]:
            self.package = ""
        else:
            self.package = None
        #: head alias → dotted module/function it names.
        self.aliases: dict[str, str] = {}
        self.envs: list[_Env] = [_Env()]
        self.loop_depth = 0
        self.func_stack: list[str] = []
        self.type_checking_depth = 0

    # -- plumbing ------------------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if self.relaxed:
            # extra-paths profile: only the configured rules, no package
            # scoping (bench/test files live outside the repro tree)
            if rule not in self.config.extra_rules:
                return
        elif not self.config.in_scope(rule, self.package):
            return
        self.violations.append(
            Violation(
                file=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    def _expand(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        full = self.aliases.get(head)
        if full is None:
            return dotted
        return f"{full}.{rest}" if rest else full

    @property
    def env(self) -> _Env:
        return self.envs[-1]

    # -- set/str inference ---------------------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.env.set_names
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.env.set_attrs
            ):
                return True
            return False
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                return True
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in _SET_METHODS_RETURNING_SET
                and self._is_set_expr(fn.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _is_str_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, str)
        if isinstance(node, ast.JoinedStr):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.env.str_names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.env.str_attrs
            )
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id == "str":
                return True
            if isinstance(fn, ast.Attribute) and fn.attr in ("join", "format"):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._is_str_expr(node.left) or self._is_str_expr(node.right)
        return False

    def _seed_env(self, env: _Env, nodes: list[ast.stmt]) -> None:
        """Classify names assigned set/str values anywhere in ``nodes``."""
        for stmt in nodes:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        self._classify_into(env, target.id, node.value, attr=False)
                elif isinstance(node, ast.AnnAssign):
                    roots = _annotation_roots(node.annotation)
                    target = node.target
                    if isinstance(target, ast.Name):
                        if roots & _SET_ANNOTATIONS:
                            env.set_names.add(target.id)
                        elif "str" in roots:
                            env.str_names.add(target.id)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if roots & _SET_ANNOTATIONS:
                            env.set_attrs.add(target.attr)
                        elif "str" in roots:
                            env.str_attrs.add(target.attr)

    def _classify_into(
        self, env: _Env, name: str, value: ast.expr, *, attr: bool
    ) -> bool:
        tmp = self.envs
        self.envs = [*tmp, env]
        try:
            if self._is_set_expr(value):
                (env.set_attrs if attr else env.set_names).add(name)
                return True
            if self._is_str_expr(value):
                (env.str_attrs if attr else env.str_names).add(name)
                return True
            return False
        finally:
            self.envs = tmp

    def _class_env(self, node: ast.ClassDef) -> _Env:
        """Collect ``self.<attr>`` / dataclass-field set & str attributes."""
        env = _Env(
            set_attrs=set(self.env.set_attrs), str_attrs=set(self.env.str_attrs)
        )
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                roots = _annotation_roots(stmt.annotation)
                if roots & _SET_ANNOTATIONS:
                    env.set_attrs.add(stmt.target.id)
                elif "str" in roots:
                    env.str_attrs.add(stmt.target.id)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self._classify_into(env, target.attr, sub.value, attr=True)
            elif isinstance(sub, ast.AnnAssign):
                target = sub.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    roots = _annotation_roots(sub.annotation)
                    if roots & _SET_ANNOTATIONS:
                        env.set_attrs.add(target.attr)
                    elif "str" in roots:
                        env.str_attrs.add(target.attr)
        return env

    # -- imports (aliases + OPS001 + OPS006) ---------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.partition(".")[0]
            self.aliases[bound] = alias.name if alias.asname else alias.name.partition(".")[0]
            if (
                alias.name == "random" or alias.name.startswith("random.")
            ) and not self.relaxed:  # relaxed flags global-state *calls* only
                self._flag(
                    node,
                    "OPS001",
                    "import of the process-global `random` module; "
                    "inject an np.random.Generator instead",
                )
            self._check_layering(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = self._resolve_from(node)
        if node.module == "random" and node.level == 0 and not self.relaxed:
            self._flag(
                node,
                "OPS001",
                "import from the process-global `random` module; "
                "inject an np.random.Generator instead",
            )
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.level == 0 and node.module:
                self.aliases[bound] = f"{node.module}.{alias.name}"
        if target is not None:
            if node.module is None and node.level > 0:
                # ``from . import x, y`` — each name is a submodule.
                for alias in node.names:
                    self._check_layering(node, f"{target}.{alias.name}")
            else:
                self._check_layering(node, target)
        self.generic_visit(node)

    def _resolve_from(self, node: ast.ImportFrom) -> str | None:
        """Absolute dotted target of a ``from`` import, if determinable."""
        if node.level == 0:
            return node.module
        parts = self.module.split(".")
        base = parts if self.is_package else parts[:-1]
        up = node.level - 1
        if up > len(base):
            return None
        base = base[: len(base) - up]
        if node.module:
            return ".".join([*base, node.module])
        return ".".join(base) if base else None

    def _check_layering(self, node: ast.stmt, target: str) -> None:
        if self.package is None:
            return
        if self.type_checking_depth > 0:
            # `if TYPE_CHECKING:` imports are erased at runtime — they
            # annotate, they do not create a layering edge.
            return
        tparts = target.split(".")
        if tparts[0] != "repro":
            return
        tpkg = tparts[1] if len(tparts) > 1 else ""
        if tpkg == self.package:
            return
        layers = self.config.layers
        my_rank = layers.get(self.package)
        t_rank = layers.get(tpkg)
        if my_rank is None or t_rank is None:
            return
        if t_rank >= my_rank:
            self._flag(
                node,
                "OPS006",
                f"layering: '{self.package}' (rank {my_rank}) must not import "
                f"'{tpkg}' (rank {t_rank}); imports must point strictly "
                "down the DAG",
            )

    # -- calls (OPS001 / OPS002 / OPS003 / OPS005) ---------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            expanded = self._expand(dotted)
            self._check_rng_call(node, expanded)
            self._check_wallclock_call(node, expanded)
        if isinstance(node.func, ast.Attribute):
            self._check_method_call(node, node.func)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, expanded: str) -> None:
        if expanded.startswith("random."):
            if (
                self.relaxed
                and expanded == "random.Random"
                and (node.args or node.keywords)
            ):
                # a *seeded instance* threaded explicitly — benches and
                # tests pin seeds on purpose; random.Random() stays flagged
                return
            self._flag(
                node,
                "OPS001",
                f"call to process-global `{expanded}`; randomness must flow "
                "through an injected np.random.Generator",
            )
            return
        if not expanded.startswith("numpy.random."):
            return
        fn = expanded.rsplit(".", 1)[1]
        if fn in _SEEDED_RNG_TYPES:
            return
        if fn == "default_rng":
            if not node.args and not node.keywords:
                self._flag(
                    node,
                    "OPS001",
                    "np.random.default_rng() without a seed is "
                    "entropy-seeded and unreproducible",
                )
            elif (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and not self.relaxed  # benches/tests pin seeds on purpose
            ):
                self._flag(
                    node,
                    "OPS001",
                    "np.random.default_rng(<literal>) hard-codes a seed; "
                    "accept a seed/Generator from the caller (suppress "
                    "with a reason if this is a documented fallback)",
                )
            return
        self._flag(
            node,
            "OPS001",
            f"`{expanded}` uses numpy's process-global RNG state; "
            "use an injected np.random.Generator",
        )

    def _check_wallclock_call(self, node: ast.Call, expanded: str) -> None:
        if expanded not in _WALLCLOCK_CALLS:
            return
        if self.module in self.config.wallclock_allow:
            return
        self._flag(
            node,
            "OPS002",
            f"wall-clock read `{expanded}` in simulation code; use the "
            "simulated clock, or route instrumentation through "
            + " / ".join(self.config.wallclock_allow),
        )

    def _check_method_call(self, node: ast.Call, func: ast.Attribute) -> None:
        receiver = func.value
        if func.attr == "remove" and len(node.args) == 1:
            if self._is_set_expr(receiver):
                return  # set.remove is O(1); order is not observed
            terminal = _terminal_name(receiver)
            if terminal in self.config.remove_allow:
                return
            self._flag(
                node,
                "OPS005",
                "list.remove is O(n) on the hot path; use a dict/set "
                "registry or swap-pop (receivers in `remove-allow` are "
                "exempt)",
            )
        elif func.attr == "pop":
            if not node.args and not node.keywords and self._is_set_expr(receiver):
                self._flag(
                    node,
                    "OPS003",
                    "set.pop() removes a hash-order-dependent element; "
                    "pop from sorted(...) or use a deque",
                )
            elif (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
            ):
                self._flag(
                    node,
                    "OPS005",
                    "list.pop(0) is O(n); use collections.deque.popleft()",
                )
        elif func.attr == "insert" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and first.value == 0:
                self._flag(
                    node,
                    "OPS005",
                    "list.insert(0, ...) is O(n); use "
                    "collections.deque.appendleft()",
                )

    # -- iteration (OPS003) --------------------------------------------------

    def _check_iteration(self, iter_node: ast.expr, where: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._flag(
                where,
                "OPS003",
                "iteration over an unordered set/frozenset; wrap the "
                "iterable in sorted(...) so results are deterministic",
            )

    def visit_If(self, node: ast.If) -> None:
        is_type_checking = (
            isinstance(node.test, ast.Name) and node.test.id == "TYPE_CHECKING"
        ) or (
            isinstance(node.test, ast.Attribute) and node.test.attr == "TYPE_CHECKING"
        )
        if is_type_checking:
            self.type_checking_depth += 1
            self.generic_visit(node)
            self.type_checking_depth -= 1
        else:
            self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def _visit_comprehension(
        self, node: ast.ListComp | ast.GeneratorExp | ast.DictComp
    ) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    # SetComp is intentionally exempt: a set built from a set is closed
    # under reordering, so no order dependence can escape.

    # -- float equality (OPS004) ---------------------------------------------

    def _is_float_quantity(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return type(node.value) is float
        terminal = _terminal_name(node)
        return terminal is not None and terminal in self.config.float_attrs

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.func_stack and self.func_stack[-1] in self.config.float_eq_helpers:
            self.generic_visit(node)
            return
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if self._is_float_quantity(left) or self._is_float_quantity(right):
                self._flag(
                    node,
                    "OPS004",
                    "exact ==/!= on a float simulation quantity; compare "
                    "with a tolerance helper or an ordering (<, <=)",
                )
                break
        self.generic_visit(node)

    # -- string building in loops (OPS005) -----------------------------------

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (
            self.loop_depth > 0
            and isinstance(node.op, ast.Add)
            and (self._is_str_expr(node.target) or self._is_str_expr(node.value))
        ):
            self._flag(
                node,
                "OPS005",
                "string += in a loop is quadratic; accumulate parts in a "
                "list and ''.join at the end",
            )
        self.generic_visit(node)

    # -- scopes --------------------------------------------------------------

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        env = _Env(
            set_attrs=set(self.env.set_attrs),
            str_attrs=set(self.env.str_attrs),
        )
        args = node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            roots = _annotation_roots(arg.annotation)
            if roots & _SET_ANNOTATIONS:
                env.set_names.add(arg.arg)
            elif "str" in roots:
                env.str_names.add(arg.arg)
        self._seed_env(env, node.body)
        self.envs.append(env)
        self.func_stack.append(node.name)
        outer_depth, self.loop_depth = self.loop_depth, 0
        self.generic_visit(node)
        self.loop_depth = outer_depth
        self.func_stack.pop()
        self.envs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.envs.append(self._class_env(node))
        self.generic_visit(node)
        self.envs.pop()

    def visit_Module(self, node: ast.Module) -> None:
        self._seed_env(self.env, node.body)
        self.generic_visit(node)


def check_module(
    tree: ast.Module,
    *,
    path: str,
    module: str,
    config: LintConfig,
    is_package: bool = False,
    relaxed: bool = False,
) -> list[Violation]:
    """Run every rule over one parsed module.

    ``relaxed`` is the extra-paths profile for benches and tests: only
    the configured ``extra-rules`` fire, package scoping is bypassed
    (those files live outside ``repro``) and OPS001 tolerates pinned
    literal seeds.
    """
    checker = _Checker(
        path, module, config, is_package=is_package, relaxed=relaxed
    )
    checker.visit(tree)
    return checker.violations
