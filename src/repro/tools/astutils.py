"""Shared AST helpers for the intra- and interprocedural analyzers.

These are the primitives both :mod:`repro.tools.checks` (single-module
rules) and :mod:`repro.tools.callgraph`/:mod:`repro.tools.summaries`
(project-wide analysis) need: dotted-name extraction, annotation root
parsing, and the catalogue of entropy sources shared by OPS002 and the
OPS101 taint pass.
"""

from __future__ import annotations

import ast

#: Wall-clock reads: banned in simulation code (OPS002) and entropy taint
#: sources for the interprocedural pass (OPS101).
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Non-clock entropy sources: values differ between identical runs.
ENTROPY_CALLS = frozenset(
    {
        "id",
        "os.urandom",
        "os.getpid",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    }
)


def dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.expr) -> str | None:
    """The last component of a Name/Attribute chain (``self.a.b`` → ``b``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def root_name(node: ast.expr) -> str | None:
    """The base Name of an attribute/subscript/call chain.

    ``self.datanodes[s].record`` → ``self``; ``fs.chunk(c).size`` → ``fs``.
    Returns None when the chain does not bottom out in a plain Name.
    """
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def annotation_roots(node: ast.expr | None) -> set[str]:
    """Root type names of an annotation (``set[int] | None`` → {set, None})."""
    out: set[str] = set()
    stack = [node]
    while stack:
        cur = stack.pop()
        if cur is None:
            continue
        if isinstance(cur, ast.Subscript):
            stack.append(cur.value)
        elif isinstance(cur, ast.BinOp) and isinstance(cur.op, ast.BitOr):
            stack.extend([cur.left, cur.right])
        elif isinstance(cur, ast.Name):
            out.add(cur.id)
        elif isinstance(cur, ast.Attribute):
            out.add(cur.attr)
        elif isinstance(cur, ast.Constant) and isinstance(cur.value, str):
            # a quoted annotation — parse its root the cheap way
            out.add(cur.value.split("[", 1)[0].strip())
    return out


def parse_string_annotation(node: ast.expr | None) -> ast.expr | None:
    """Resolve a quoted annotation to its parsed expression when possible."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    return node


def iter_arguments(args: ast.arguments) -> list[ast.arg]:
    """All positional-ish parameters in declaration order (incl. *args/**kw)."""
    return [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]
