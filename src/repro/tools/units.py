"""The OPS102 unit lattice: bytes / seconds / bytes_per_sec / count.

A tiny dimensional analysis for the quantities the simulator actually
mixes.  Units are inferred from three sources, in priority order:

1. ``Annotated[..., BYTES]`` hints (or the :mod:`repro.units` aliases
   ``Bytes``/``Seconds``/``BytesPerSec``/``Count``) on parameters,
   returns and dataclass fields;
2. parameter/attribute **name conventions** (``*_bw`` → bytes_per_sec,
   ``*_latency``/``*_time`` → seconds, ``size``/``*_bytes`` → bytes, …);
3. fixed-point propagation: an unannotated parameter that is forwarded
   to a callee's ``seconds`` parameter becomes ``seconds`` itself.

Arithmetic follows the physical rules (``bytes / seconds →
bytes_per_sec``, ``bytes / bytes_per_sec → seconds``, ``count`` is
transparent under scaling, ``X / X → count``).  Anything the tables do
not know produces ``None`` (unknown), and **unknown never flags**: the
rule only fires when two *known, different* units meet under ``+``,
``-``, a comparison, an argument binding or a return.
"""

from __future__ import annotations

import ast

from .astutils import parse_string_annotation

BYTES = "bytes"
SECONDS = "seconds"
BYTES_PER_SEC = "bytes_per_sec"
COUNT = "count"

UNITS = (BYTES, SECONDS, BYTES_PER_SEC, COUNT)

#: repro.units alias name → unit (annotation roots resolve through this).
ALIAS_UNITS: dict[str, str] = {
    "Bytes": BYTES,
    "Seconds": SECONDS,
    "BytesPerSec": BYTES_PER_SEC,
    "Count": COUNT,
}

#: repro.units marker constant name → unit (``Annotated[float, BYTES]``).
MARKER_UNITS: dict[str, str] = {
    "BYTES": BYTES,
    "SECONDS": SECONDS,
    "BYTES_PER_SEC": BYTES_PER_SEC,
    "COUNT": COUNT,
}

#: Exact variable/attribute names with a conventional unit.
NAME_UNITS: dict[str, str] = {
    "size": BYTES,
    "nbytes": BYTES,
    "chunk_size": BYTES,
    "file_size": BYTES,
    "total_bytes": BYTES,
    "local_bytes": BYTES,
    "remote_bytes": BYTES,
    "bytes_served": BYTES,
    "latency": SECONDS,
    "seek_latency": SECONDS,
    "remote_latency": SECONDS,
    "duration": SECONDS,
    "elapsed": SECONDS,
    "timeout": SECONDS,
    "deadline": SECONDS,
    "makespan": SECONDS,
    "now": SECONDS,
    "rate": BYTES_PER_SEC,
    "rate_cap": BYTES_PER_SEC,
    "bandwidth": BYTES_PER_SEC,
    "bw": BYTES_PER_SEC,
    "throughput": BYTES_PER_SEC,
    "concurrency": COUNT,
    "replication": COUNT,
}

#: Suffix conventions, checked when no exact name matches.
SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_bytes", BYTES),
    ("_size", BYTES),
    ("_latency", SECONDS),
    ("_time", SECONDS),
    ("_seconds", SECONDS),
    ("_deadline", SECONDS),
    ("_bw", BYTES_PER_SEC),
    ("_rate", BYTES_PER_SEC),
    ("_bandwidth", BYTES_PER_SEC),
    ("_count", COUNT),
)

#: Prefix conventions (cardinalities).
PREFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("num_", COUNT),
    ("n_", COUNT),
)


def unit_of_name(name: str | None) -> str | None:
    """Conventional unit of a bare variable/attribute name, if any."""
    if not name:
        return None
    exact = NAME_UNITS.get(name)
    if exact is not None:
        return exact
    for suffix, unit in SUFFIX_UNITS:
        if name.endswith(suffix):
            return unit
    for prefix, unit in PREFIX_UNITS:
        if name.startswith(prefix):
            return unit
    return None


def unit_of_annotation(
    node: ast.expr | None, resolve: "callable[[str], str | None] | None" = None
) -> str | None:
    """Unit declared by an annotation expression, if any.

    Recognizes the :mod:`repro.units` aliases (``Bytes`` …), the marker
    constants inside ``Annotated[...]`` (``BYTES`` …) and literal strings
    (``Annotated[float, "bytes"]``).  ``resolve`` maps a local binding to
    its imported dotted target so aliased imports still count; when it is
    None the bare names are trusted.
    """
    node = parse_string_annotation(node)
    if node is None:
        return None

    def known(name: str, table: dict[str, str]) -> str | None:
        if resolve is not None:
            target = resolve(name)
            if target is not None:
                last = target.rsplit(".", 1)[-1]
                if target.startswith("repro.units.") and last in table:
                    return table[last]
                if target == name and name in table:
                    return table[name]
                return None
        return table.get(name)

    # Annotated[base, marker, ...]
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
        if base_name == "Annotated" and isinstance(node.slice, ast.Tuple):
            for meta in node.slice.elts[1:]:
                if isinstance(meta, ast.Constant) and isinstance(meta.value, str):
                    if meta.value in UNITS:
                        return meta.value
                name = meta.id if isinstance(meta, ast.Name) else None
                if name is not None:
                    unit = known(name, MARKER_UNITS)
                    if unit is not None:
                        return unit
                if (
                    isinstance(meta, ast.Call)
                    and isinstance(meta.func, ast.Name)
                    and meta.func.id == "Unit"
                    and meta.args
                    and isinstance(meta.args[0], ast.Constant)
                    and meta.args[0].value in UNITS
                ):
                    return str(meta.args[0].value)
        # Optional[Bytes], Bytes | None → look through one subscript level
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = unit_of_annotation(node.left, resolve)
        right = unit_of_annotation(node.right, resolve)
        return left if left is not None else right
    if isinstance(node, ast.Name):
        return known(node.id, ALIAS_UNITS)
    if isinstance(node, ast.Attribute):
        return ALIAS_UNITS.get(node.attr)
    return None


def combine_add(left: str | None, right: str | None) -> tuple[str | None, bool]:
    """Unit of ``left + right`` / ``left - right`` → (unit, mismatch)."""
    if left is None:
        return right, False
    if right is None:
        return left, False
    if left == right:
        return left, False
    return None, True


def combine_mul(left: str | None, right: str | None) -> str | None:
    """Unit of ``left * right``."""
    if left == COUNT:
        return right
    if right == COUNT:
        return left
    if {left, right} == {BYTES_PER_SEC, SECONDS}:
        return BYTES
    return None


def combine_div(left: str | None, right: str | None) -> str | None:
    """Unit of ``left / right`` (also ``//``)."""
    if right == COUNT:
        return left
    if left is not None and left == right:
        return COUNT
    if left == BYTES and right == SECONDS:
        return BYTES_PER_SEC
    if left == BYTES and right == BYTES_PER_SEC:
        return SECONDS
    if left == BYTES_PER_SEC and right == SECONDS:
        return None
    return None
