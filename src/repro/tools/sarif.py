"""SARIF 2.1.0 output for ``opass-lint`` / ``opass-verify``.

One run per report.  Every known rule appears in the driver's rule
table (stable ``ruleIndex`` ordering, sorted by id); unsuppressed
violations become ``level: error`` results and suppressed ones carry a
``suppressions`` entry with ``kind: inSource`` and the pragma's reason
as the justification, which is how SARIF viewers are told "seen and
waived, on purpose".
"""

from __future__ import annotations

import json

from .api import ALL_RULES, LintReport
from .model import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _result(violation: Violation, rule_index: dict[str, int]) -> dict:
    out: dict = {
        "ruleId": violation.rule,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.file.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col,
                    },
                }
            }
        ],
    }
    index = rule_index.get(violation.rule)
    if index is not None:
        out["ruleIndex"] = index
    if violation.suppressed:
        out["suppressions"] = [
            {
                "kind": "inSource",
                "justification": violation.reason or "",
            }
        ]
    return out


def to_sarif(report: LintReport) -> dict:
    """The report as a SARIF 2.1.0 log dict."""
    report.sort()
    rule_ids = sorted(ALL_RULES)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        _result(v, rule_index) for v in (*report.violations, *report.suppressed)
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": report.tool,
                        "informationUri": (
                            "https://github.com/opass-repro/opass"
                        ),
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": ALL_RULES[rule_id]
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def to_sarif_json(report: LintReport) -> str:
    return json.dumps(to_sarif(report), indent=2)
