"""Shared data model for the analyzer: violations and suppressions.

A violation pins a rule id to a ``file:line:col`` location.  Suppressions
are per-line pragmas of the form::

    x = risky()  # opass: ignore[OPS001] -- documented fallback seed

The reason after ``--`` is mandatory: a suppression is a *recorded
decision*, and a bare one (no reason, or an unknown rule id) is itself
reported as **OPS000** so it cannot silently rot.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Matches the suppression pragma anywhere in a source line.
_PRAGMA = re.compile(r"#\s*opass:\s*ignore\[(?P<ids>[^\]]*)\](?P<rest>.*)$")
_REASON = re.compile(r"^\s*--\s*(?P<reason>\S.*)$")
_RULE_ID = re.compile(r"^OPS\d{3}$")

#: Matches the module-override directive used by lint fixtures::
#:
#:     # opass-lint: module=repro.simulate.example
MODULE_DIRECTIVE = re.compile(r"#\s*opass-lint:\s*module=(?P<module>[\w.]+)")

#: Matches the reassociation waiver used by OPS203 in kernel modules::
#:
#:     n = int(lens.sum())  # opass: reassoc-ok -- int64 sum, addition is exact
_REASSOC = re.compile(r"#\s*opass:\s*reassoc-ok(?P<rest>.*)$")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a location."""

    file: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False
    reason: str | None = None

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["reason"] = self.reason
        return out

    def render(self) -> str:
        tag = " (suppressed: {})".format(self.reason) if self.suppressed else ""
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"


@dataclass
class Suppression:
    """A parsed suppression pragma on one line."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)


def parse_suppressions(
    source: str, path: str, known_rules: frozenset[str]
) -> tuple[dict[int, Suppression], list[Violation]]:
    """Extract per-line suppressions; malformed pragmas become OPS000.

    Returns ``(by_line, errors)``.  A pragma is malformed when its reason
    is missing/empty or any listed rule id is not a known ``OPSnnn``.
    """
    by_line: dict[int, Suppression] = {}
    errors: list[Violation] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _PRAGMA.search(text)
        if m is None:
            continue
        col = m.start() + 1
        ids = tuple(part.strip() for part in m.group("ids").split(",") if part.strip())
        reason_m = _REASON.match(m.group("rest"))
        bad: list[str] = []
        if not ids:
            bad.append("no rule ids listed")
        for rule_id in ids:
            if not _RULE_ID.match(rule_id):
                bad.append(f"malformed rule id {rule_id!r}")
            elif rule_id not in known_rules:
                bad.append(f"unknown rule id {rule_id!r}")
        if reason_m is None:
            bad.append("missing reason (write `-- <why this is safe>`)")
        if bad:
            errors.append(
                Violation(
                    file=path,
                    line=lineno,
                    col=col,
                    rule="OPS000",
                    message="invalid suppression: " + "; ".join(bad),
                )
            )
            continue
        assert reason_m is not None
        by_line[lineno] = Suppression(
            line=lineno, rules=ids, reason=reason_m.group("reason").strip()
        )
    return by_line, errors


def parse_reassoc_pragmas(
    source: str, path: str
) -> tuple[set[int], list[Violation]]:
    """Extract ``# opass: reassoc-ok -- reason`` waiver lines.

    Returns ``(lines, errors)``.  Like suppressions, the reason is
    mandatory — a reassociation waiver records *why* the accumulation
    order is fixed or exact, and a bare one is reported as OPS000.
    """
    lines: set[int] = set()
    errors: list[Violation] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _REASSOC.search(text)
        if m is None:
            continue
        reason_m = _REASON.match(m.group("rest"))
        if reason_m is None:
            errors.append(
                Violation(
                    file=path,
                    line=lineno,
                    col=m.start() + 1,
                    rule="OPS000",
                    message=(
                        "invalid reassoc-ok pragma: missing reason "
                        "(write `-- <why the order is fixed or exact>`)"
                    ),
                )
            )
            continue
        lines.add(lineno)
    return lines, errors


def module_directive(source: str) -> str | None:
    """The ``# opass-lint: module=...`` override, if present near the top."""
    for text in source.splitlines()[:10]:
        m = MODULE_DIRECTIVE.search(text)
        if m is not None:
            return m.group("module")
    return None
