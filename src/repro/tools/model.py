"""Shared data model for the analyzer: violations and pragmas.

A violation pins a rule id to a ``file:line:col`` location.  All pragmas
share one ``# opass: <kind>`` grammar with a mandatory ``-- <reason>``
tail, parsed by a single reason-mandatory parser:

* ``# opass: ignore[OPS001] -- documented fallback seed`` — suppress a
  rule on this line;
* ``# opass: reassoc-ok -- int64 sum, addition is exact`` — OPS203
  reassociation waiver in kernel modules;
* ``# opass: alloc-ok -- hit holds at most |path| entries`` — OPS301
  allocation waiver inside a cost-contracted function.

A pragma is a *recorded decision*: a bare one (no reason), an unknown
rule id, or an unknown pragma kind is itself reported as **OPS000** so
it cannot silently rot.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: Matches the ``opass:`` pragma prefix anywhere in a comment.
_PRAGMA_ANY = re.compile(r"#\s*opass:\s*(?P<body>.*)$")
#: The suppression form of the pragma body.
_IGNORE = re.compile(r"^ignore\[(?P<ids>[^\]]*)\](?P<rest>.*)$")
#: The marker form of the pragma body (``reassoc-ok``, ``alloc-ok``, …).
_MARKER = re.compile(r"^(?P<kind>[A-Za-z][\w-]*)(?P<rest>.*)$")
_REASON = re.compile(r"^\s*--\s*(?P<reason>\S.*)$")
_RULE_ID = re.compile(r"^OPS\d{3}$")

#: Marker pragma kinds the analyzers understand, mapped to the rule each
#: waives.  Any other kind after the pragma prefix is an OPS000.
MARKER_KINDS: dict[str, str] = {
    "reassoc-ok": "OPS203",
    "alloc-ok": "OPS301",
}

#: Matches the module-override directive used by lint fixtures::
#:
#:     # opass-lint: module=repro.simulate.example
MODULE_DIRECTIVE = re.compile(r"#\s*opass-lint:\s*module=(?P<module>[\w.]+)")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a location."""

    file: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False
    reason: str | None = None

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["reason"] = self.reason
        return out

    def render(self) -> str:
        tag = " (suppressed: {})".format(self.reason) if self.suppressed else ""
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"


@dataclass
class Suppression:
    """A parsed suppression pragma on one line."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)


@dataclass
class PragmaIndex:
    """Every pragma in one file, parsed through the unified grammar."""

    #: line → suppression (``ignore[...]`` form, reason present).
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: marker kind → lines carrying a well-formed waiver with a reason.
    markers: dict[str, set[int]] = field(default_factory=dict)
    #: OPS000 findings: bare/unknown kinds, unknown rule ids, no reason.
    errors: list[Violation] = field(default_factory=list)


def parse_pragmas(
    source: str, path: str, known_rules: frozenset[str] | None
) -> PragmaIndex:
    """Parse every ``# opass:`` pragma; malformed ones become OPS000.

    One grammar for both forms: ``ignore[OPSnnn, ...] -- reason`` and
    the marker kinds in :data:`MARKER_KINDS` (``reassoc-ok -- reason``,
    ``alloc-ok -- reason``).  The reason is mandatory everywhere, and an
    unknown kind after the pragma prefix is itself an error — a typo
    like ``allocok`` must not silently waive nothing.

    Only real ``#`` comments are scanned (via :mod:`tokenize`), so prose
    *describing* the grammar inside a docstring or a string literal is
    not mistaken for a pragma; on unreadable input the scan falls back
    to raw lines, which can only over-report, never miss a pragma.
    """
    index = PragmaIndex()
    comments: list[tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        comments = [
            (lineno, 0, text)
            for lineno, text in enumerate(source.splitlines(), start=1)
        ]
    for lineno, start_col, text in comments:
        m = _PRAGMA_ANY.search(text)
        if m is None:
            continue
        col = start_col + m.start() + 1
        body = m.group("body")
        bad: list[str] = []

        ign = _IGNORE.match(body)
        if ign is not None:
            ids = tuple(
                part.strip() for part in ign.group("ids").split(",") if part.strip()
            )
            reason_m = _REASON.match(ign.group("rest"))
            if not ids:
                bad.append("no rule ids listed")
            for rule_id in ids:
                if not _RULE_ID.match(rule_id):
                    bad.append(f"malformed rule id {rule_id!r}")
                elif known_rules is not None and rule_id not in known_rules:
                    bad.append(f"unknown rule id {rule_id!r}")
            if reason_m is None:
                bad.append("missing reason (write `-- <why this is safe>`)")
            if bad:
                index.errors.append(
                    Violation(
                        file=path,
                        line=lineno,
                        col=col,
                        rule="OPS000",
                        message="invalid suppression: " + "; ".join(bad),
                    )
                )
                continue
            assert reason_m is not None
            index.suppressions[lineno] = Suppression(
                line=lineno, rules=ids, reason=reason_m.group("reason").strip()
            )
            continue

        marker = _MARKER.match(body)
        kind = marker.group("kind") if marker is not None else None
        if kind is not None and kind in MARKER_KINDS:
            reason_m = _REASON.match(marker.group("rest"))  # type: ignore[union-attr]
            if reason_m is None:
                index.errors.append(
                    Violation(
                        file=path,
                        line=lineno,
                        col=col,
                        rule="OPS000",
                        message=(
                            f"invalid {kind} pragma: missing reason "
                            "(write `-- <why this is safe>`)"
                        ),
                    )
                )
                continue
            index.markers.setdefault(kind, set()).add(lineno)
            continue

        index.errors.append(
            Violation(
                file=path,
                line=lineno,
                col=col,
                rule="OPS000",
                message=(
                    f"unknown pragma kind {kind or body.strip()!r} "
                    f"(known: ignore[...], {', '.join(sorted(MARKER_KINDS))})"
                ),
            )
        )
    return index


def parse_suppressions(
    source: str, path: str, known_rules: frozenset[str]
) -> tuple[dict[int, Suppression], list[Violation]]:
    """Extract per-line suppressions plus *all* pragma-grammar errors.

    Thin wrapper over :func:`parse_pragmas`; the errors cover malformed
    suppressions AND malformed/unknown marker pragmas, so the one caller
    that reports OPS000 (``apply_suppressions``) sees every grammar
    problem exactly once.
    """
    index = parse_pragmas(source, path, known_rules)
    return index.suppressions, index.errors


def marker_lines(source: str, kind: str) -> set[int]:
    """Lines carrying a well-formed ``# opass: <kind> -- reason`` waiver.

    Grammar errors are *not* reported here — they surface as OPS000 via
    :func:`parse_suppressions` in ``apply_suppressions``, which every
    front end funnels through.  A bare marker therefore waives nothing.
    """
    index = parse_pragmas(source, "<ignored>", None)
    return index.markers.get(kind, set())


def parse_reassoc_pragmas(
    source: str, path: str
) -> tuple[set[int], list[Violation]]:
    """Back-compat view of the unified parser for ``reassoc-ok`` waivers.

    Returns ``(lines, errors)`` where the errors are the marker-grammar
    problems only (bare markers, unknown kinds) — suppression-id
    validation is ``apply_suppressions``'s business.
    """
    index = parse_pragmas(source, path, None)
    errors = [
        e
        for e in index.errors
        if "pragma" in e.message  # marker-grammar errors, not ignore[...]
    ]
    return index.markers.get("reassoc-ok", set()), errors


def module_directive(source: str) -> str | None:
    """The ``# opass-lint: module=...`` override, if present near the top."""
    for text in source.splitlines()[:10]:
        m = MODULE_DIRECTIVE.search(text)
        if m is not None:
            return m.group("module")
    return None
