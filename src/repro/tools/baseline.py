"""Baseline files: adopt the analyzer on a codebase with known debt.

``--write-baseline`` records a fingerprint for every *current*
violation; later runs with ``--baseline`` drop exactly those findings
and report only new ones.  Fingerprints deliberately exclude the line
*number* — they hash the rule id, the file, and the stripped text of
the offending line (plus an occurrence counter for identical lines), so
baselined findings survive unrelated edits that shift code up or down.
Changing the offending line itself re-surfaces the finding, which is
the behavior a baseline should have.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .api import LintReport
from .model import Violation

BASELINE_VERSION = 1


def _line_text(sources: dict[str, list[str]], violation: Violation) -> str:
    lines = sources.get(violation.file)
    if lines is None:
        try:
            text = Path(violation.file).read_text(encoding="utf-8")
            lines = text.splitlines()
        except OSError:
            lines = []
        sources[violation.file] = lines
    if 1 <= violation.line <= len(lines):
        return lines[violation.line - 1].strip()
    return ""


def fingerprints(violations: list[Violation]) -> list[str]:
    """Stable fingerprints, one per violation (occurrence-counted)."""
    sources: dict[str, list[str]] = {}
    seen: dict[str, int] = {}
    out: list[str] = []
    for violation in violations:
        base = "|".join(
            (
                violation.rule,
                violation.file.replace("\\", "/"),
                _line_text(sources, violation),
            )
        )
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        digest = hashlib.sha256(f"{base}|{occurrence}".encode()).hexdigest()
        out.append(digest[:24])
    return out


def write_baseline(path: str | Path, report: LintReport) -> None:
    report.sort()
    payload = {
        "version": BASELINE_VERSION,
        "tool": report.tool,
        "fingerprints": sorted(fingerprints(report.violations)),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str | Path) -> set[str]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} baseline")
    prints = data.get("fingerprints")
    if not isinstance(prints, list) or not all(
        isinstance(p, str) for p in prints
    ):
        raise ValueError(f"{path}: malformed fingerprint list")
    return set(prints)


def apply_baseline(path: str | Path, report: LintReport) -> int:
    """Drop baselined violations from ``report``; returns how many."""
    known = load_baseline(path)
    report.sort()
    kept: list[Violation] = []
    dropped = 0
    for violation, print_ in zip(report.violations, fingerprints(report.violations)):
        if print_ in known:
            dropped += 1
        else:
            kept.append(violation)
    report.violations = kept
    return dropped
