"""``opass-verify``: interprocedural analysis front end.

``python -m repro.tools.verify [paths...]`` runs the OPS101–OPS103
rules (determinism taint, unit checking, scheduler purity), the
OPS201–OPS204 concurrency/float-identity rules
(:mod:`repro.tools.concurrency`) and the OPS301–OPS304 cost-contract
rules (:mod:`repro.tools.costmodel`) over a whole tree at once, because
unlike :mod:`repro.tools.checks` these rules need *project-wide*
call-graph summaries: a violation may only be visible two or three call
levels away from the code that commits it.

``--contracts-check BENCH_sim.json BENCH_sched.json`` runs only the
OPS304 contract echo: the bench JSONs' deterministic work counters are
checked against the declared growth bounds, so a static cost claim that
dynamic evidence contradicts fails CI.

The run is incremental.  Per-module summaries and per-module check
results are cached in ``.opass-cache/`` under *partitioned* config
fingerprints: summary bundles are keyed by content hash and
:meth:`LintConfig.summary_fingerprint` (today config-independent — axis
names are recorded raw and classified at check time), while check
results additionally carry :meth:`LintConfig.check_fingerprint` and the
per-module :meth:`LintConfig.contracts_signature`, plus the hash of the
module's transitive import closure (see :mod:`repro.tools.cache`).
Editing a cost-contract bound therefore re-checks exactly the module
declaring that function; editing a lint-only knob re-checks nothing.  A
warm run over an unchanged tree loads every summary and every check
result from the cache and never parses a single module — the fast path
goes straight from content hashes to the final report.

Exit codes match ``opass-lint``: 0 clean, 1 violations, 2 usage error.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

from .api import (
    ALL_RULES,
    LintReport,
    _iter_python_files,
    apply_suppressions,
)
from .cache import AnalysisCache, CacheStats, closure_signature, module_key
from .callgraph import ModuleDecl, Project, parse_module
from .concurrency import check_module_concurrency
from .config import ConfigError, LintConfig, find_pyproject, load_config
from .costmodel import check_contract_echo, check_module_cost, resolve_costs
from .interproc import check_module_interproc
from .model import Violation, marker_lines
from .summaries import LocalSummary, resolve_summaries, summarize_module

EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2

TOOL = "opass-verify"


# ---- core pipeline ---------------------------------------------------------


def _closure(
    module: str, deps_of: dict[str, list[str] | set[str]]
) -> set[str]:
    """Transitive deps of ``module`` among the analyzed set, incl. itself.

    Mirrors :meth:`Project.closure_of` (with the same strip-one-component
    retry for ``from repro.x import fn`` deps) but runs on a plain deps
    mapping so the warm path can compute closure signatures without
    parsing anything.
    """
    out: set[str] = set()
    stack = [module]
    while stack:
        cur = stack.pop()
        if cur in out:
            continue
        if cur not in deps_of:
            parent = cur.rpartition(".")[0]
            if parent and parent not in out and parent in deps_of:
                stack.append(parent)
            continue
        out.add(cur)
        stack.extend(deps_of[cur])
    return out


def _decode_violation(data: dict, path: str) -> Violation:
    """Rebuild a cached raw violation, re-pinned to the current path."""
    return Violation(
        file=path,
        line=int(data.get("line", 1)),
        col=int(data.get("col", 1)),
        rule=str(data.get("rule", "OPS000")),
        message=str(data.get("message", "")),
    )


def _closure_sigs(
    entries: list[tuple[str, str, str]],
    mod_of: dict[str, str],
    deps_of: dict[str, list[str] | set[str]],
) -> dict[str, str]:
    """Per-file closure signature from module names, deps and keys."""
    key_of_mod = {mod_of[path]: key for path, _, key in entries}
    sigs: dict[str, str] = {}
    for path, _, _ in entries:
        module = mod_of[path]
        members = [
            (m, key_of_mod[m])
            for m in _closure(module, deps_of)
            if m in key_of_mod
        ]
        sigs[path] = closure_signature(members)
    return sigs


def _check_sig(
    closure_sig: str,
    config: LintConfig,
    module: str,
    function_locals: set[str],
) -> str:
    """Composite check-cache signature for one module.

    Closure signature (cross-module effects) + the digest of the
    check-relevant config fields + the digest of this module's own cost
    contracts.  Lint-only config edits change none of the three, so a
    warm run after one keeps ``check_misses=0``; editing a contract
    bound misses exactly the declaring module.
    """
    return (
        f"{closure_sig}-{config.check_fingerprint()}-"
        f"{config.contracts_signature(module, function_locals)}"
    )


def verify_paths(
    paths: list[str | Path],
    *,
    config: LintConfig | None = None,
    cache: AnalysisCache | None = None,
) -> LintReport:
    """Run OPS101–OPS103 over files/directories as one project."""
    if config is None:
        pyproject = find_pyproject(Path(paths[0]) if paths else Path.cwd())
        config = load_config(pyproject) if pyproject else LintConfig()
    if cache is None:
        cache = AnalysisCache(None)

    # summaries are (today) config-independent: axis names, taints and
    # call facts are recorded raw and classified at check time
    summary_fp = config.summary_fingerprint()
    entries: list[tuple[str, str, str]] = []  # (path, source, key)
    for raw in paths:
        p = Path(raw)
        from_sweep = p.is_dir()
        for file in _iter_python_files([p]):
            # exclude patterns prune swept trees only; a file named
            # explicitly (fixture snippets under tests/data/) is analyzed
            if from_sweep and any(
                pattern in str(file) for pattern in config.exclude
            ):
                continue
            source = file.read_text(encoding="utf-8")
            entries.append(
                (str(file), source, module_key(source, summary_fp))
            )

    bundles = {path: cache.load_bundle(key) for path, _, key in entries}

    # ---- warm fast path: everything from the cache, no parsing ------------
    checks_loaded: dict[str, list[dict] | None] = {}
    if entries and all(bundles[path] is not None for path, _, _ in entries):
        mod_of = {path: bundles[path]["module"] for path, _, _ in entries}
        deps_of = {
            bundles[path]["module"]: bundles[path]["deps"]
            for path, _, _ in entries
        }
        sigs = _closure_sigs(entries, mod_of, deps_of)
        checks_loaded = {
            path: cache.load_checks(
                key,
                _check_sig(
                    sigs[path],
                    config,
                    mod_of[path],
                    set(bundles[path]["functions"]),
                ),
            )
            for path, _, key in entries
        }
        if all(checks_loaded[path] is not None for path, _, _ in entries):
            raw_by_path = {
                path: [_decode_violation(d, path) for d in checks_loaded[path]]
                for path, _, _ in entries
            }
            return _assemble(entries, raw_by_path)

    # ---- full path: parse everything, reuse whatever the cache has --------
    decls: dict[str, ModuleDecl] = {}
    project = Project()
    for path, source, _ in entries:
        decl = parse_module(source, path=path)
        decls[path] = decl
        project.add_module(decl)

    local: dict[str, LocalSummary] = {}
    for path, source, key in entries:
        decl = decls[path]
        bundle = bundles[path]
        if bundle is not None and set(bundle["functions"]) == set(decl.functions):
            summaries = {
                name: LocalSummary.from_dict(data)
                for name, data in bundle["functions"].items()
            }
        else:
            summaries = summarize_module(
                decl, alloc_ok=marker_lines(source, "alloc-ok")
            )
            cache.store_bundle(key, decl.module, decl.deps, summaries)
        for name, summary in summaries.items():
            local[f"{decl.module}.{name}"] = summary

    project_summaries = resolve_summaries(project, local)
    costs = resolve_costs(project_summaries, config)

    mod_of = {path: decls[path].module for path, _, _ in entries}
    deps_of = {decls[path].module: decls[path].deps for path, _, _ in entries}
    sigs = _closure_sigs(entries, mod_of, deps_of)

    raw_by_path = {}
    for path, source, key in entries:
        decl = decls[path]
        sig = _check_sig(sigs[path], config, decl.module, set(decl.functions))
        if path in checks_loaded:  # already probed on the warm fast path
            cached = checks_loaded[path]
        else:
            cached = cache.load_checks(key, sig)
        if cached is not None:
            raw_by_path[path] = [_decode_violation(d, path) for d in cached]
            continue
        raw = check_module_interproc(decl, project_summaries, config)
        raw += check_module_concurrency(
            decl, project_summaries, config, source=source
        )
        raw += check_module_cost(decl, project_summaries, costs, config)
        cache.store_checks(key, sig, [v.as_dict() for v in raw])
        raw_by_path[path] = raw
    return _assemble(entries, raw_by_path)


def _assemble(
    entries: list[tuple[str, str, str]],
    raw_by_path: dict[str, list[Violation]],
) -> LintReport:
    report = LintReport(tool=TOOL)
    for path, source, _ in entries:
        report.extend(
            apply_suppressions(raw_by_path.get(path, []), source, path, tool=TOOL)
        )
    report.sort()
    return report


def verify_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
) -> LintReport:
    """Verify one source string as a standalone single-module project."""
    config = config if config is not None else LintConfig()
    decl = parse_module(source, path=path, module=module)
    project = Project()
    project.add_module(decl)
    local = {
        f"{decl.module}.{name}": summary
        for name, summary in summarize_module(
            decl, alloc_ok=marker_lines(source, "alloc-ok")
        ).items()
    }
    summaries = resolve_summaries(project, local)
    costs = resolve_costs(summaries, config)
    raw = check_module_interproc(decl, summaries, config)
    raw += check_module_concurrency(decl, summaries, config, source=source)
    raw += check_module_cost(decl, summaries, costs, config)
    return apply_suppressions(raw, source, path, tool=TOOL)


# ---- CLI -------------------------------------------------------------------


def _changed_files(repo_root: Path) -> set[Path] | None:
    """Files touched per git (worktree vs HEAD, plus untracked), resolved.

    Robust on detached-HEAD and shallow checkouts (both still have a
    resolvable HEAD) and on unborn-HEAD repos (no commit yet — there
    every tracked file counts as changed, since CI clones in odd states
    must not silently verify nothing).
    """

    def run(args: list[str]) -> list[str]:
        proc = subprocess.run(
            args,
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        )
        return [line.strip() for line in proc.stdout.splitlines() if line.strip()]

    out: set[Path] = set()
    try:
        head = subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=30,
        )
        if head.returncode == 0:
            names = run(["git", "diff", "--name-only", "HEAD"])
        else:  # unborn HEAD: no baseline commit, everything staged is new
            names = run(["git", "ls-files"])
        names += run(["git", "ls-files", "--others", "--exclude-standard"])
        for name in names:
            out.add((repo_root / name).resolve())
    except (OSError, subprocess.SubprocessError):
        return None
    return out


def _git_root(start: Path) -> Path | None:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=start if start.is_dir() else start.parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        )
        return Path(proc.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        return None


def _filter_changed(report: LintReport, changed: set[Path]) -> None:
    keep = lambda v: Path(v.file).resolve() in changed  # noqa: E731
    report.violations = [v for v in report.violations if keep(v)]
    report.suppressed = [v for v in report.suppressed if keep(v)]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.verify",
        description=(
            "opass-verify: interprocedural determinism-taint, unit, "
            "scheduler-purity (OPS101-OPS103), concurrency/"
            "float-identity (OPS201-OPS204) and cost-contract "
            "(OPS301-OPS304) analysis"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to verify as one project (default: src); "
        "with --contracts-check, bench counter JSON files instead",
    )
    parser.add_argument(
        "--contracts-check",
        action="store_true",
        help="run only the OPS304 contract echo: check the bench JSONs' "
        "work counters against the declared growth bounds",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml with a [tool.opass-lint] table",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the report to FILE (useful for CI artifacts)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress violations recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record current violations as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=".opass-cache",
        help="incremental cache directory (default: .opass-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report only files changed per git (analysis still sees "
        "the whole tree, so cross-module effects are not missed)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit/miss counters and wall time to stderr",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the combined rule table and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, description in sorted(ALL_RULES.items()):
            print(f"{rule_id}  {description}")
        return EXIT_OK

    try:
        if args.config is not None:
            config = load_config(args.config)
        else:
            pyproject = find_pyproject(Path(args.paths[0]))
            config = load_config(pyproject) if pyproject else LintConfig()
    except ConfigError as exc:
        print(f"{TOOL}: config error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    for path in args.paths:
        if not Path(path).exists():
            print(f"{TOOL}: no such path: {path}", file=sys.stderr)
            return EXIT_ERROR

    stats = CacheStats()
    cache = AnalysisCache(None if args.no_cache else args.cache_dir, stats)
    started = time.perf_counter()
    if args.contracts_check:
        report = LintReport(tool=TOOL, files_checked=len(args.paths))
        report.violations.extend(check_contract_echo(list(args.paths), config))
        report.sort()
    else:
        try:
            report = verify_paths(list(args.paths), config=config, cache=cache)
        except SyntaxError as exc:
            print(
                f"{TOOL}: cannot parse {exc.filename}: {exc}", file=sys.stderr
            )
            return EXIT_ERROR

    if args.changed:
        root = _git_root(Path(args.paths[0]))
        changed = _changed_files(root) if root is not None else None
        if changed is None:
            print(f"{TOOL}: --changed requires a git checkout", file=sys.stderr)
            return EXIT_ERROR
        _filter_changed(report, changed)

    if args.write_baseline is not None:
        from .baseline import write_baseline

        write_baseline(args.write_baseline, report)
        print(
            f"{TOOL}: wrote baseline with {len(report.violations)} "
            f"violation(s) to {args.write_baseline}"
        )
        return EXIT_OK

    if args.baseline is not None:
        from .baseline import apply_baseline

        try:
            apply_baseline(args.baseline, report)
        except (OSError, ValueError) as exc:
            print(f"{TOOL}: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_ERROR

    if args.format == "sarif":
        from .sarif import to_sarif_json

        rendered = to_sarif_json(report)
    elif args.format == "json":
        rendered = report.to_json()
    else:
        rendered = report.render()
    print(rendered)
    if args.output is not None:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")

    if args.stats:
        elapsed = time.perf_counter() - started
        pairs = ", ".join(f"{k}={v}" for k, v in stats.as_dict().items())
        print(f"{TOOL}: {pairs}, wall={elapsed:.3f}s", file=sys.stderr)
    return EXIT_OK if report.ok else EXIT_VIOLATIONS


if __name__ == "__main__":
    sys.exit(main())
