"""``python -m repro.tools`` → the lint CLI."""

import sys

from .lint import main

if __name__ == "__main__":
    sys.exit(main())
