"""Per-function summaries and their fixed-point resolution.

The interprocedural rules (OPS101–OPS103, :mod:`repro.tools.interproc`)
never walk a callee's body at a call site.  Instead each function is
reduced once to a :class:`LocalSummary` — which calls it makes
(:class:`~repro.tools.callgraph.CallRef`), which parameters/calls feed
its return value, and which parameters it mutates directly — and a
worklist then propagates four facts over the call graph to a fixed
point:

* ``return_taint`` — taint kinds (:data:`TAINT_ENTROPY`,
  :data:`TAINT_RNG`) a function's return value may carry;
* ``return_params`` — parameters whose *value* may be returned (so a
  call result inherits the taint of the bound arguments);
* ``mutates`` — parameters (by index) transitively mutated;
* ``param_units`` / ``return_unit`` — the OPS102 dimension of each
  parameter and of the return value, combining ``Annotated`` hints,
  name conventions and forwarding inference.

Local summaries are pure functions of one module's source, which makes
them cacheable by content hash (:mod:`repro.tools.cache`); the fixed
point itself is cheap and recomputed every run against fresh
declaration tables.

Known, deliberate approximations (all favour *fewer* false positives):
value flow only (no control-dependence taint), exact-name argument
binding (a nested call's taint does not flow through an unrelated
callee), and call results insulate mutation (mutating a returned copy
never counts against the callee's receiver).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from .astutils import (
    annotation_roots,
    dotted,
    parse_string_annotation,
    root_name,
    terminal_name,
)
from .callgraph import (
    CallRef,
    FunctionDecl,
    ModuleDecl,
    Project,
    ResolvedCall,
    build_call_ref,
)
from .units import (
    combine_add,
    combine_div,
    combine_mul,
    unit_of_annotation,
    unit_of_name,
)

#: Value differs between two identical invocations of the program
#: (wall clock, ``id()``, ``os.urandom``, an *unseeded* Generator, …).
TAINT_ENTROPY = "entropy"
#: Value is np.random Generator machinery (seeded or not) — fine to
#: thread explicitly, suspect when conjured inside a decision path.
TAINT_RNG = "rng"

#: Bound methods that mutate their receiver in-place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "add",
        "discard",
        "update",
        "setdefault",
        "appendleft",
        "popleft",
        "extendleft",
        "rotate",
    }
)

#: External callables that mutate a positional argument in place.
EXTERNAL_MUTATORS: dict[str, tuple[int, ...]] = {
    "heapq.heappush": (0,),
    "heapq.heappop": (0,),
    "heapq.heapify": (0,),
    "bisect.insort": (0,),
    "bisect.insort_left": (0,),
    "bisect.insort_right": (0,),
    "random.shuffle": (0,),
}

#: numpy.random names that are seeded-RNG machinery, not raw entropy.
_RNG_MACHINERY = frozenset(
    {
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "SeedSequence",
    }
)

#: Fully-qualified annotation targets that mark a parameter as an RNG.
_RNG_ANNOTATIONS = frozenset(
    {
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.BitGenerator",
    }
)

_BUILTIN_NUMERIC_WRAPPERS = frozenset(
    {"min", "max", "abs", "sum", "float", "int", "round"}
)

#: Builtin calls that materialize a container sized by their argument.
_ALLOC_BUILTINS = frozenset({"list", "dict", "set", "tuple", "frozenset", "sorted"})

#: ``numpy.*`` constructors that allocate an array sized by their argument.
_NP_CONSTRUCTORS = frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "zeros",
        "ones",
        "empty",
        "full",
        "arange",
        "linspace",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "column_stack",
        "tile",
        "repeat",
        "copy",
        "fromiter",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
    }
)

#: Calls transparent to axis extraction: the iteration axis of
#: ``sorted(group)`` or ``enumerate(members)`` is the argument's axis.
_AXIS_TRANSPARENT_CALLS = frozenset(
    {
        "range",
        "enumerate",
        "reversed",
        "sorted",
        "list",
        "tuple",
        "set",
        "frozenset",
        "iter",
        "zip",
        "len",
        "min",
        "max",
    }
)

#: Method calls transparent to axis extraction through their receiver.
_AXIS_TRANSPARENT_METHODS = frozenset({"items", "keys", "values", "copy"})


def axis_of(expr: ast.expr) -> str:
    """The iteration axis token of an expression.

    A *name* token (``members``, ``_dirty_groups``) is classified
    small/linear later against the configured ``small-axes``; the
    special tokens are ``<const>`` (syntactically fixed size),
    ``<element>`` (one subscripted element of a container), ``<while>``
    (data-dependent trip count) and ``<unknown>``.
    """
    if isinstance(expr, ast.Constant):
        return "<const>"
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return terminal_name(expr) or "<unknown>"
    if isinstance(expr, ast.Subscript):
        return "<element>"
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return "<const>"  # literal display: arity is fixed in the source
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return axis_of(expr.generators[0].iter)
    if isinstance(expr, ast.DictComp):
        return axis_of(expr.generators[0].iter)
    if isinstance(expr, (ast.Starred, ast.Await, ast.NamedExpr)):
        return axis_of(expr.value)
    if isinstance(expr, ast.Call):
        fname = (
            terminal_name(expr.func)
            if isinstance(expr.func, (ast.Name, ast.Attribute))
            else None
        )
        if fname in _AXIS_TRANSPARENT_CALLS:
            for arg in expr.args:
                if not isinstance(arg, ast.Constant):
                    return axis_of(arg)
            return "<const>"
        if fname in _AXIS_TRANSPARENT_METHODS and isinstance(
            expr.func, ast.Attribute
        ):
            return axis_of(expr.func.value)
        return fname or "<unknown>"
    return "<unknown>"


@dataclass
class AllocSite:
    """One scaling allocation inside a function body (cost lattice input).

    ``own`` is the build's intrinsic iteration axes (what it copies),
    ``axes`` the enclosing loop axes outermost-first.  Constant-size
    builds (empty displays, literal displays, ``np.zeros(3)``) are never
    recorded — the lattice tracks sizes that scale, not object churn.
    """

    line: int
    col: int
    kind: str
    own: tuple[str, ...]
    axes: tuple[str, ...]
    waived: bool = False

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "own": list(self.own),
            "axes": list(self.axes),
            "waived": self.waived,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AllocSite":
        return cls(
            line=int(data.get("line", 1)),
            col=int(data.get("col", 1)),
            kind=str(data.get("kind", "")),
            own=tuple(data.get("own", [])),
            axes=tuple(data.get("axes", [])),
            waived=bool(data.get("waived", False)),
        )

#: Type roots that never name a project class.
_GENERIC_TYPE_ROOTS = frozenset(
    {
        "Annotated",
        "Any",
        "Callable",
        "ClassVar",
        "Counter",
        "DefaultDict",
        "Deque",
        "Dict",
        "Final",
        "FrozenSet",
        "Iterable",
        "Iterator",
        "List",
        "Literal",
        "Mapping",
        "Optional",
        "Self",
        "Sequence",
        "Set",
        "Tuple",
        "Type",
        "Union",
    }
)


def external_taint(target: str, nargs: int) -> frozenset[str]:
    """Taint kinds produced by calling an external dotted name."""
    from .astutils import ENTROPY_CALLS, WALLCLOCK_CALLS

    if target in WALLCLOCK_CALLS or target in ENTROPY_CALLS:
        return frozenset({TAINT_ENTROPY})
    if target == "numpy.random.default_rng" or target == "random.Random":
        if nargs == 0:
            return frozenset({TAINT_ENTROPY, TAINT_RNG})
        return frozenset({TAINT_RNG})
    if target.startswith("numpy.random."):
        tail = target.rsplit(".", 1)[-1]
        if tail in _RNG_MACHINERY:
            return frozenset({TAINT_RNG})
        # module-level draw functions share unseeded global state
        return frozenset({TAINT_ENTROPY})
    if target.startswith("random.") or target == "random":
        return frozenset({TAINT_ENTROPY})
    return frozenset()


def is_rng_annotation(decl: ModuleDecl, ann: ast.expr | None) -> bool:
    """True when an annotation names ``np.random.Generator`` (or kin)."""
    ann = parse_string_annotation(ann)
    if ann is None:
        return False
    for node in ast.walk(ann):
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted(node)
            if name is not None and decl.expand(name) in _RNG_ANNOTATIONS:
                return True
    return False


def class_type_root(decl: ModuleDecl, ann: ast.expr | None) -> str | None:
    """Best-effort class name an annotation assigns to a binding."""
    for root in sorted(annotation_roots(ann)):
        if root and root[0].isupper() and root not in _GENERIC_TYPE_ROOTS:
            return root
    return None


@dataclass
class LocalSummary:
    """Facts about one function derivable from its own body alone."""

    calls: list[CallRef] = field(default_factory=list)
    #: indices into ``calls`` whose result may reach the return value.
    return_calls: set[int] = field(default_factory=set)
    #: parameter indices whose value may reach the return value.
    return_params: set[int] = field(default_factory=set)
    #: parameter indices mutated directly (attr/item writes, del).
    mutated_params: set[int] = field(default_factory=set)
    #: return unit inferred from the body's own names/arithmetic.
    return_unit_local: str | None = None
    #: module globals this function rebinds (``global X`` + assignment);
    #: fork workers must not reach such functions (OPS201).
    global_writes: list[str] = field(default_factory=list)
    #: scaling allocation sites (OPS301 + the cost fixed point).
    allocs: list[AllocSite] = field(default_factory=list)
    #: per-call-site enclosing loop axes, aligned with ``calls``.
    call_axes: list[tuple[str, ...]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "calls": [ref.to_dict() for ref in self.calls],
            "return_calls": sorted(self.return_calls),
            "return_params": sorted(self.return_params),
            "mutated_params": sorted(self.mutated_params),
            "return_unit_local": self.return_unit_local,
            "global_writes": list(self.global_writes),
            "allocs": [site.to_dict() for site in self.allocs],
            "call_axes": [list(axes) for axes in self.call_axes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LocalSummary":
        calls = [CallRef.from_dict(d) for d in data.get("calls", [])]
        call_axes = [tuple(axes) for axes in data.get("call_axes", [])]
        while len(call_axes) < len(calls):
            call_axes.append(())
        return cls(
            calls=calls,
            return_calls=set(data.get("return_calls", [])),
            return_params=set(data.get("return_params", [])),
            mutated_params=set(data.get("mutated_params", [])),
            return_unit_local=data.get("return_unit_local"),
            global_writes=list(data.get("global_writes", [])),
            allocs=[AllocSite.from_dict(d) for d in data.get("allocs", [])],
            call_axes=call_axes,
        )


def infer_local_types(
    decl: ModuleDecl, fn: FunctionDecl
) -> dict[str, str]:
    """Map local names (incl. params) to inferred class names."""
    types: dict[str, str] = {}
    for name, ann in zip(fn.params, fn.param_annotation_nodes):
        root = class_type_root(decl, ann)
        if root is not None:
            types[name] = root

    def constructed(func: ast.expr) -> str | None:
        name = dotted(func) if isinstance(func, (ast.Name, ast.Attribute)) else None
        if name is None:
            return None
        if isinstance(func, ast.Name):
            if name in decl.classes:
                return name
            if name in decl.functions:
                return class_type_root(decl, decl.functions[name].node.returns)
        last = decl.expand(name).rsplit(".", 1)[-1]
        if last and last[0].isupper() and last not in _GENERIC_TYPE_ROOTS:
            return last
        return None

    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            cname = constructed(node.value.func)
            if cname is not None:
                types[node.targets[0].id] = cname
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            root = class_type_root(decl, node.annotation)
            if root is not None:
                types[node.target.id] = root
    return types


def declared_param_units(decl: ModuleDecl, fn: FunctionDecl) -> list[str | None]:
    """Per-parameter unit: ``Annotated`` hint first, else name convention."""
    units: list[str | None] = []
    for name, ann in zip(fn.params, fn.param_annotation_nodes):
        unit = unit_of_annotation(ann, decl.resolve_local)
        if unit is None:
            unit = unit_of_name(name)
        units.append(unit)
    return units


def declared_return_unit(decl: ModuleDecl, fn: FunctionDecl) -> str | None:
    return unit_of_annotation(fn.node.returns, decl.resolve_local)


def _flatten_targets(targets: list[ast.expr]) -> list[ast.expr]:
    out: list[ast.expr] = []
    stack = list(targets)
    while stack:
        t = stack.pop()
        if isinstance(t, (ast.Tuple, ast.List)):
            stack.extend(t.elts)
        elif isinstance(t, ast.Starred):
            stack.append(t.value)
        else:
            out.append(t)
    return out


def _collect_cost_facts(
    decl: ModuleDecl,
    fn: FunctionDecl,
    call_idx: dict[int, int],
    n_calls: int,
    alloc_ok: frozenset[int] | set[int],
) -> tuple[list[AllocSite], list[tuple[str, ...]]]:
    """Allocation sites and per-call loop axes for one function body.

    A single recursive walk maintaining the loop-axis stack.  ``cold``
    subtrees (``raise``/``assert`` payloads) contribute nothing — error
    paths may build messages freely.  Nested ``def``/``lambda`` bodies
    are skipped: their iteration context is their own.
    """
    allocs: list[AllocSite] = []
    call_axes: list[tuple[str, ...]] = [() for _ in range(n_calls)]
    stack: list[str] = []

    def add_alloc(node: ast.AST, kind: str, own: tuple[str, ...]) -> None:
        if all(axis == "<const>" for axis in own):
            return  # constant-size build: churn, not scaling
        allocs.append(
            AllocSite(
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                kind=kind,
                own=own,
                axes=tuple(stack),
                waived=getattr(node, "lineno", 1) in alloc_ok,
            )
        )

    def classify_call(node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _ALLOC_BUILTINS and node.args:
                add_alloc(node, f"{func.id}() build", (axis_of(node.args[0]),))
                return
        if isinstance(func, (ast.Name, ast.Attribute)):
            name = dotted(func)
            full = decl.expand(name) if name is not None else None
            if full is not None and full.startswith("numpy."):
                tail = full.rsplit(".", 1)[-1]
                if tail in _NP_CONSTRUCTORS and node.args:
                    add_alloc(node, f"np.{tail} build", (axis_of(node.args[0]),))

    def walk(node: ast.AST, cold: bool) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ) and node is not fn.node:
            return
        if isinstance(node, (ast.Raise, ast.Assert)):
            cold = True
        if isinstance(node, ast.Call):
            idx = call_idx.get(id(node))
            if idx is not None and not cold:
                call_axes[idx] = tuple(stack)
            if not cold:
                classify_call(node)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            if not cold:
                label = {
                    ast.ListComp: "list comprehension",
                    ast.SetComp: "set comprehension",
                    ast.DictComp: "dict comprehension",
                }[type(node)]
                add_alloc(
                    node,
                    label,
                    tuple(axis_of(gen.iter) for gen in node.generators),
                )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            str_side = any(
                isinstance(side, ast.JoinedStr)
                or (isinstance(side, ast.Constant) and isinstance(side.value, str))
                for side in (node.left, node.right)
            )
            if str_side and stack and not cold:
                add_alloc(node, "string concatenation", ("<str>",))

        if isinstance(node, (ast.For, ast.AsyncFor)):
            walk(node.iter, cold)
            walk(node.target, cold)
            stack.append(axis_of(node.iter))
            for child in (*node.body, *node.orelse):
                walk(child, cold)
            stack.pop()
            return
        if isinstance(node, ast.While):
            stack.append("<while>")
            walk(node.test, cold)
            for child in (*node.body, *node.orelse):
                walk(child, cold)
            stack.pop()
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            pushed = 0
            for gen in node.generators:
                walk(gen.iter, cold)
                stack.append(axis_of(gen.iter))
                pushed += 1
                walk(gen.target, cold)
                for cond in gen.ifs:
                    walk(cond, cold)
            if isinstance(node, ast.DictComp):
                walk(node.key, cold)
                walk(node.value, cold)
            else:
                walk(node.elt, cold)
            del stack[-pushed:]
            return
        for child in ast.iter_child_nodes(node):
            walk(child, cold)

    walk(fn.node, False)
    return allocs, call_axes


def summarize_function(
    decl: ModuleDecl,
    fn: FunctionDecl,
    *,
    alloc_ok: frozenset[int] | set[int] = frozenset(),
) -> LocalSummary:
    """Reduce one function body to its :class:`LocalSummary`.

    ``alloc_ok`` is the set of source lines carrying a well-formed
    ``# opass: alloc-ok -- reason`` waiver (parsed from the module text
    by the caller); allocation sites on those lines are recorded as
    waived and excluded from the cost fixed point, so an amortization
    argument made once stays compositional under caching.
    """
    params = {name: i for i, name in enumerate(fn.params)}
    local_types = infer_local_types(decl, fn)
    summary = LocalSummary()

    call_idx: dict[int, int] = {}
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            ref = build_call_ref(
                decl,
                node,
                params=params,
                local_types=local_types,
                current_class=fn.class_name,
            )
            if ref is not None:
                call_idx[id(node)] = len(summary.calls)
                summary.calls.append(ref)

    summary.allocs, summary.call_axes = _collect_cost_facts(
        decl, fn, call_idx, len(summary.calls), alloc_ok
    )

    _FRESH_CONTAINERS = (
        ast.List,
        ast.Tuple,
        ast.Set,
        ast.Dict,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
        ast.BinOp,
        ast.UnaryOp,
        ast.Compare,
        ast.JoinedStr,
    )

    def origins(expr: ast.expr | None) -> tuple[set[int], set[int], set[int]]:
        """(alias params, derived params, call indices) flowing into expr.

        *Alias* origins reach into a parameter's object graph (mutating
        them mutates the parameter); *derived* origins only carry its
        value (a comprehension over a param builds a fresh container, so
        taint flows but mutation does not).
        """
        if expr is None:
            return set(), set(), set()
        if isinstance(expr, ast.Name):
            if expr.id in env:
                a, d, c = env[expr.id]
                return set(a), set(d), set(c)
            if expr.id in params:
                return {params[expr.id]}, set(), set()
            return set(), set(), set()
        if isinstance(expr, ast.Call):
            idx = call_idx.get(id(expr))
            return set(), set(), ({idx} if idx is not None else set())
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred, ast.Await)):
            return origins(expr.value)
        if isinstance(expr, ast.NamedExpr):
            return origins(expr.value)
        if isinstance(expr, ast.IfExp):
            a1, d1, c1 = origins(expr.body)
            a2, d2, c2 = origins(expr.orelse)
            return a1 | a2, d1 | d2, c1 | c2
        fresh = isinstance(expr, _FRESH_CONTAINERS)
        a_out: set[int] = set()
        d_out: set[int] = set()
        c_out: set[int] = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, (ast.expr, ast.comprehension)):
                if isinstance(child, ast.comprehension):
                    a, d, c = origins(child.iter)
                else:
                    a, d, c = origins(child)
                if fresh:
                    d_out |= a | d
                else:
                    a_out |= a
                    d_out |= d
                c_out |= c
        return a_out, d_out, c_out

    # flow-insensitive assignment environment, iterated to a local fixed
    # point so chains (x = rng; y = x; return y) resolve.
    env: dict[str, tuple[set[int], set[int], set[int]]] = {}
    for _ in range(10):
        changed = False
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if node.value is None:
                    continue
                targets, value = [node.target], node.value
            elif isinstance(node, ast.NamedExpr):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.For):
                targets, value = [node.target], node.iter
            else:
                continue
            a, d, c = origins(value)
            for t in _flatten_targets(targets):
                if not isinstance(t, ast.Name):
                    continue
                cur = env.setdefault(t.id, (set(), set(), set()))
                if not (a <= cur[0] and d <= cur[1] and c <= cur[2]):
                    cur[0].update(a)
                    cur[1].update(d)
                    cur[2].update(c)
                    changed = True
        if not changed:
            break

    # direct mutations: attribute/item writes or deletes rooted in a
    # parameter, or in a local aliasing part of a parameter's object graph
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        else:
            continue
        for t in _flatten_targets(targets):
            if not isinstance(t, (ast.Attribute, ast.Subscript)):
                continue
            root = root_name(t)
            if root is None:
                continue
            if root in env:
                summary.mutated_params.update(env[root][0])
            elif root in params:
                summary.mutated_params.add(params[root])

    # mutating method calls on locals that alias a parameter's object
    # graph (``c = a or b; c.append(x)``).  Param-rooted receivers are
    # handled by the resolver's builtin-mutator fallback via recv_param;
    # only the env aliases are invisible to the CallRef.
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            recv = node.func.value
            while isinstance(recv, (ast.Attribute, ast.Subscript, ast.Starred)):
                recv = recv.value
            if isinstance(recv, ast.Name) and recv.id in env:
                summary.mutated_params.update(env[recv.id][0])

    # globals rebound in this body: declared ``global`` AND assigned
    declared_global: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    if declared_global:
        written: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            else:
                continue
            for t in _flatten_targets(targets):
                if isinstance(t, ast.Name) and t.id in declared_global:
                    written.add(t.id)
        summary.global_writes = sorted(written)

    # return flow + best-effort local return unit
    return_units: set[str] = set()
    saw_unknown_unit = False
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        a, d, c = origins(node.value)
        summary.return_params |= a | d
        summary.return_calls |= c
        unit = _unit_of_expr_local(decl, fn, node.value)
        if unit is None:
            saw_unknown_unit = True
        else:
            return_units.add(unit)
    if len(return_units) == 1 and not saw_unknown_unit:
        summary.return_unit_local = next(iter(return_units))
    return summary


def _unit_of_expr_local(
    decl: ModuleDecl, fn: FunctionDecl, expr: ast.expr
) -> str | None:
    """Unit of an expression from names and arithmetic alone (no calls)."""
    units = declared_param_units(decl, fn)
    by_name = dict(zip(fn.params, units))

    def unit(e: ast.expr) -> str | None:
        if isinstance(e, ast.Name):
            if e.id in by_name and by_name[e.id] is not None:
                return by_name[e.id]
            return unit_of_name(e.id)
        if isinstance(e, ast.Attribute):
            return unit_of_name(e.attr)
        if isinstance(e, ast.BinOp):
            left, right = unit(e.left), unit(e.right)
            if isinstance(e.op, (ast.Add, ast.Sub)):
                return combine_add(left, right)[0]
            if isinstance(e.op, ast.Mult):
                return combine_mul(left, right)
            if isinstance(e.op, (ast.Div, ast.FloorDiv)):
                return combine_div(left, right)
            return None
        if isinstance(e, ast.IfExp):
            body, orelse = unit(e.body), unit(e.orelse)
            return body if body == orelse else None
        if isinstance(e, ast.Call) and isinstance(e.func, ast.Name):
            if e.func.id in _BUILTIN_NUMERIC_WRAPPERS and e.args:
                arg_units = {unit(a) for a in e.args} - {None}
                if len(arg_units) == 1:
                    return next(iter(arg_units))
        return None

    return unit(expr)


def summarize_module(
    decl: ModuleDecl, *, alloc_ok: frozenset[int] | set[int] = frozenset()
) -> dict[str, LocalSummary]:
    """Local summaries for every function in a module, by local qualname."""
    return {
        local: summarize_function(decl, fn, alloc_ok=alloc_ok)
        for local, fn in decl.functions.items()
    }


def bind_param(
    ref: CallRef,
    rc: ResolvedCall,
    target: FunctionDecl,
    callee_idx: int,
    *,
    alias: bool = False,
) -> int | None:
    """Caller parameter bound to ``target``'s parameter ``callee_idx``.

    ``alias=True`` also matches arguments *rooted* in a caller parameter
    (``cluster.datanodes[0]``) — right for mutation and taint, wrong for
    unit forwarding (an object is not its attribute's dimension).
    """
    if rc.shift == 1 and callee_idx == 0:
        return ref.recv_param
    pos = callee_idx - rc.shift
    args = ref.arg_roots if alias else ref.arg_params
    if 0 <= pos < len(args) and args[pos] is not None:
        return args[pos]
    if callee_idx < len(target.params):
        kws = ref.kw_roots if alias else ref.kw_params
        return kws.get(target.params[callee_idx])
    return None


@dataclass
class ProjectSummaries:
    """Fixed-point-resolved facts for every function in the project."""

    project: Project
    locals: dict[str, LocalSummary]
    resolved: dict[str, list[ResolvedCall]]
    return_taint: dict[str, frozenset[str]]
    return_params: dict[str, frozenset[int]]
    mutates: dict[str, frozenset[int]]
    param_units: dict[str, tuple[str | None, ...]]
    return_unit: dict[str, str | None]
    #: worklist iterations until convergence (observability / tests).
    rounds: int = 0


def resolve_summaries(
    project: Project, local_summaries: dict[str, LocalSummary]
) -> ProjectSummaries:
    """Propagate local summaries over the call graph to a fixed point."""
    locals_ = local_summaries
    resolved = {
        key: [project.resolve_ref(ref) for ref in summary.calls]
        for key, summary in locals_.items()
    }

    return_taint: dict[str, frozenset[str]] = {}
    return_params: dict[str, frozenset[int]] = {}
    mutates: dict[str, frozenset[int]] = {}
    param_units: dict[str, tuple[str | None, ...]] = {}
    return_unit: dict[str, str | None] = {}
    declared_units: dict[str, tuple[str | None, ...]] = {}
    declared_ret: dict[str, str | None] = {}

    for key, summary in locals_.items():
        fn = project.functions.get(key)
        decl = project.modules.get(fn.module) if fn is not None else None
        return_taint[key] = frozenset()
        return_params[key] = frozenset(summary.return_params)
        mutates[key] = frozenset(summary.mutated_params)
        if fn is not None and decl is not None:
            units = tuple(declared_param_units(decl, fn))
            ret = declared_return_unit(decl, fn)
        else:
            units, ret = (), None
        declared_units[key] = units
        declared_ret[key] = ret
        param_units[key] = units
        return_unit[key] = ret if ret is not None else summary.return_unit_local

    callers: dict[str, set[str]] = {}
    for key, rcs in resolved.items():
        for rc in rcs:
            for target in rc.targets:
                if target.key in locals_:
                    callers.setdefault(target.key, set()).add(key)

    work: deque[str] = deque(locals_)
    queued = set(work)
    visits: dict[str, int] = {}
    rounds = 0
    while work:
        key = work.popleft()
        queued.discard(key)
        if visits.get(key, 0) >= 20:  # safety valve for unit oscillation
            continue
        visits[key] = visits.get(key, 0) + 1
        rounds += 1

        summary = locals_[key]
        fn = project.functions.get(key)
        rt: set[str] = set()
        rp: set[int] = set(summary.return_params)
        mut: set[int] = set(summary.mutated_params)
        unit_candidates: dict[int, set[str]] = {}
        ret_call_units: set[str] = set()

        for idx, (ref, rc) in enumerate(zip(summary.calls, resolved[key])):
            if idx in summary.return_calls:
                if rc.external is not None:
                    rt |= external_taint(rc.external, ref.nargs)
                for target in rc.targets:
                    rt |= return_taint.get(target.key, frozenset())
                    for i in return_params.get(target.key, frozenset()):
                        bound = bind_param(ref, rc, target, i, alias=True)
                        if bound is not None:
                            rp.add(bound)
                    unit = return_unit.get(target.key)
                    if unit is not None:
                        ret_call_units.add(unit)

            for target in rc.targets:
                for i in mutates.get(target.key, frozenset()):
                    bound = bind_param(ref, rc, target, i, alias=True)
                    if bound is not None:
                        mut.add(bound)
                for i, unit in enumerate(param_units.get(target.key, ())):
                    if unit is None:
                        continue
                    bound = bind_param(ref, rc, target, i)
                    if bound is not None:
                        unit_candidates.setdefault(bound, set()).add(unit)
            if (
                not rc.targets
                and ref.kind == "method"
                and ref.target in MUTATING_METHODS
                and ref.recv_param is not None
            ):
                mut.add(ref.recv_param)
            if rc.external in EXTERNAL_MUTATORS:
                for i in EXTERNAL_MUTATORS[rc.external]:
                    if i < len(ref.arg_params) and ref.arg_params[i] is not None:
                        mut.add(ref.arg_params[i])

        # units: declared/convention beats inference; inference fills the
        # gaps only when every forwarding edge agrees
        base_units = declared_units.get(key, ())
        new_units = list(base_units)
        n_params = len(fn.params) if fn is not None else len(new_units)
        while len(new_units) < n_params:
            new_units.append(None)
        for i, unit in enumerate(new_units):
            if unit is None and len(unit_candidates.get(i, ())) == 1:
                new_units[i] = next(iter(unit_candidates[i]))
        new_ret = declared_ret.get(key)
        if new_ret is None:
            new_ret = summary.return_unit_local
        if new_ret is None and len(ret_call_units) == 1:
            new_ret = next(iter(ret_call_units))

        new_state = (
            frozenset(rt),
            frozenset(rp),
            frozenset(mut),
            tuple(new_units),
            new_ret,
        )
        old_state = (
            return_taint[key],
            return_params[key],
            mutates[key],
            param_units[key],
            return_unit[key],
        )
        if new_state != old_state:
            return_taint[key] = new_state[0]
            return_params[key] = new_state[1]
            mutates[key] = new_state[2]
            param_units[key] = new_state[3]
            return_unit[key] = new_state[4]
            for caller in callers.get(key, ()):
                if caller not in queued:
                    work.append(caller)
                    queued.add(caller)

    return ProjectSummaries(
        project=project,
        locals=locals_,
        resolved=resolved,
        return_taint=return_taint,
        return_params=return_params,
        mutates=mutates,
        param_units=param_units,
        return_unit=return_unit,
        rounds=rounds,
    )
