"""Project-wide call graph: module index, declarations, call resolution.

The interprocedural passes need to answer "which function does this call
expression reach?" across the whole ``repro`` tree.  This module builds
the supporting index from nothing but ASTs:

* :class:`ModuleDecl` — one parsed module: its import alias table, its
  function/class declarations, and the repro modules it depends on;
* :class:`Project` — the set of analyzed modules plus global lookup
  tables (dotted function names, class names for dynamic dispatch);
* :class:`CallRef` — a call expression reduced to a symbolic,
  serializable form (cached summaries survive re-runs without ASTs);
* :meth:`Project.resolve_ref` — resolution of a :class:`CallRef` to
  :class:`FunctionDecl` targets or an external dotted name.

Resolution is deliberately best-effort and *optimistic*: a call that
cannot be resolved contributes nothing (no taint, no side effects).
Method calls resolve through the receiver's inferred type when one is
known (annotation, ``Cls(...)`` construction, or a callee's declared
return type); otherwise the **dynamic dispatch fallback** applies — the
union of every known class method with that name, so a mutation or
taint in *any* candidate is assumed possible.

``if TYPE_CHECKING:`` imports bind names for annotations but are erased
at runtime, so they create neither call targets nor dependency edges
(cache invalidation ignores them too).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from .astutils import annotation_roots, dotted, iter_arguments

#: Bump when the analysis or the cached-summary format changes.
#: v2: LocalSummary gained ``global_writes``; the OPS200 concurrency pass
#: contributes to cached per-module check results.
#: v3: LocalSummary gained the cost lattice (``allocs``/``call_axes``);
#: the OPS300 cost-contract pass contributes to cached check results,
#: and check keys gained the check-config + per-module contract digests.
ANALYZER_VERSION = 3


@dataclass
class FunctionDecl:
    """One function or method declaration."""

    module: str
    local_qualname: str  # "f" or "Cls.f"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str]
    param_annotation_nodes: list[ast.expr | None]
    class_name: str | None = None

    @property
    def key(self) -> str:
        """Project-unique dotted key, e.g. ``repro.core.opass.f``."""
        return f"{self.module}.{self.local_qualname}"

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassDecl:
    """One class declaration: methods, bases, annotated fields."""

    module: str
    name: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  # name → local_qualname
    #: field name → annotation AST (dataclass-style annotated attributes).
    field_annotations: dict[str, ast.expr] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module}.{self.name}"


class _TypeCheckingFinder(ast.NodeVisitor):
    """Collect line spans of ``if TYPE_CHECKING:`` blocks."""

    def __init__(self) -> None:
        self.spans: list[tuple[int, int]] = []

    def visit_If(self, node: ast.If) -> None:
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_tc and node.body:
            end = max(getattr(n, "end_lineno", n.lineno) for n in node.body)
            self.spans.append((node.body[0].lineno, end))
        self.generic_visit(node)


@dataclass
class ModuleDecl:
    """Declarations extracted from one module's AST."""

    module: str
    path: str
    tree: ast.Module
    is_package: bool = False
    #: local binding → dotted import target (``np`` → ``numpy``).
    aliases: dict[str, str] = field(default_factory=dict)
    #: repro modules this module imports at runtime (no TYPE_CHECKING).
    deps: set[str] = field(default_factory=set)
    functions: dict[str, FunctionDecl] = field(default_factory=dict)
    classes: dict[str, ClassDecl] = field(default_factory=dict)
    #: module-level ``name = <dotted>`` aliases (``wall_clock = time.perf_counter``).
    assign_aliases: dict[str, str] = field(default_factory=dict)

    def resolve_local(self, name: str) -> str | None:
        """Dotted target a local binding refers to, if imported/aliased."""
        if name in self.aliases:
            return self.aliases[name]
        if name in self.assign_aliases:
            return self.assign_aliases[name]
        return None

    def expand(self, dotted_name: str) -> str:
        """Expand the head of ``a.b.c`` through the alias table."""
        head, _, rest = dotted_name.partition(".")
        full = self.resolve_local(head)
        if full is None:
            return dotted_name
        return f"{full}.{rest}" if rest else full


def _module_from_path(path: Path) -> tuple[str, bool]:
    """Infer the dotted module name from a file path (shared with lint)."""
    parts = list(path.parts)
    is_package = path.name == "__init__.py"
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        mod_parts = parts[start:]
    else:
        mod_parts = [path.name]
    if is_package:
        mod_parts = mod_parts[:-1]
    elif mod_parts[-1].endswith(".py"):
        mod_parts[-1] = mod_parts[-1][: -len(".py")]
    return ".".join(mod_parts), is_package


def _resolve_relative(
    module: str, is_package: bool, node: ast.ImportFrom
) -> str | None:
    """Absolute dotted target of a ``from`` import, if determinable."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    base = parts if is_package else parts[:-1]
    up = node.level - 1
    if up > len(base):
        return None
    base = base[: len(base) - up]
    if node.module:
        return ".".join([*base, node.module])
    return ".".join(base) if base else None


def source_fingerprint(source: str) -> str:
    """Content hash keying the per-module cache entries."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def parse_module(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    is_package: bool | None = None,
) -> ModuleDecl:
    """Build a :class:`ModuleDecl` from source text."""
    from .model import module_directive

    directive = module_directive(source)
    if module is None:
        if directive is not None:
            module = directive
            inferred_pkg = False
        else:
            module, inferred_pkg = _module_from_path(Path(path))
        if is_package is None:
            is_package = inferred_pkg
    if is_package is None:
        is_package = path.endswith("__init__.py")

    tree = ast.parse(source, filename=path)
    decl = ModuleDecl(module=module, path=path, tree=tree, is_package=is_package)

    finder = _TypeCheckingFinder()
    finder.visit(tree)

    def in_type_checking(node: ast.stmt) -> bool:
        return any(lo <= node.lineno <= hi for lo, hi in finder.spans)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.partition(".")[0]
                decl.aliases[bound] = (
                    alias.name if alias.asname else alias.name.partition(".")[0]
                )
                if alias.name.split(".")[0] == "repro" and not in_type_checking(node):
                    decl.deps.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(module, is_package, node)
            if target is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                decl.aliases[bound] = f"{target}.{alias.name}"
            if target.split(".")[0] == "repro" and not in_type_checking(node):
                if node.module is None and node.level > 0:
                    for alias in node.names:
                        decl.deps.add(f"{target}.{alias.name}")
                else:
                    decl.deps.add(target)

    def add_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef, class_name: str | None
    ) -> None:
        args = iter_arguments(node.args)
        local = f"{class_name}.{node.name}" if class_name else node.name
        decl.functions[local] = FunctionDecl(
            module=module,
            local_qualname=local,
            node=node,
            params=[a.arg for a in args],
            param_annotation_nodes=[a.annotation for a in args],
            class_name=class_name,
        )

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, None)
        elif isinstance(node, ast.ClassDef):
            cls = ClassDecl(module=module, name=node.name)
            for base in node.bases:
                base_name = dotted(base)
                if base_name is not None:
                    cls.bases.append(base_name.rsplit(".", 1)[-1])
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(sub, node.name)
                    cls.methods[sub.name] = f"{node.name}.{sub.name}"
                elif isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    cls.field_annotations[sub.target.id] = sub.annotation
            decl.classes[node.name] = cls
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value_dotted = dotted(node.value)
            if isinstance(target, ast.Name) and value_dotted is not None:
                decl.assign_aliases[target.id] = decl.expand(value_dotted)

    return decl


@dataclass
class CallRef:
    """A call expression in symbolic, serializable form.

    ``kind`` is ``"dotted"`` (plain function, imported name, constructor,
    or explicit ``Cls.method`` — target is the alias-expanded dotted
    name) or ``"method"`` (bound receiver — target is the method name).
    ``recv_param``/``arg_params``/``kw_params`` record which *caller
    parameters* feed the call, which is all the fixed point needs to
    compose taint, mutation and unit information across call edges.
    """

    kind: str
    target: str
    module: str
    line: int = 0
    col: int = 0
    recv_type: str | None = None
    recv_param: int | None = None
    arg_params: list[int | None] = field(default_factory=list)
    kw_params: dict[str, int | None] = field(default_factory=dict)
    #: like arg_params/kw_params but matching *alias roots*: an argument
    #: ``cluster.datanodes[0]`` is rooted in parameter ``cluster``, so a
    #: callee mutating it mutates the caller's parameter.  Call results
    #: insulate (a returned copy is the callee's business).
    arg_roots: list[int | None] = field(default_factory=list)
    kw_roots: dict[str, int | None] = field(default_factory=dict)
    nargs: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "recv_type": self.recv_type,
            "recv_param": self.recv_param,
            "arg_params": self.arg_params,
            "kw_params": self.kw_params,
            "arg_roots": self.arg_roots,
            "kw_roots": self.kw_roots,
            "nargs": self.nargs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallRef":
        return cls(
            kind=data["kind"],
            target=data["target"],
            module=data["module"],
            line=data.get("line", 0),
            col=data.get("col", 0),
            recv_type=data.get("recv_type"),
            recv_param=data.get("recv_param"),
            arg_params=list(data.get("arg_params", [])),
            kw_params=dict(data.get("kw_params", {})),
            arg_roots=list(data.get("arg_roots", [])),
            kw_roots=dict(data.get("kw_roots", {})),
            nargs=data.get("nargs", 0),
        )


@dataclass
class ResolvedCall:
    """Outcome of resolving a :class:`CallRef` against a project."""

    targets: list[FunctionDecl] = field(default_factory=list)
    external: str | None = None
    #: 1 when positional arg *j* binds target parameter *j + 1* (bound
    #: receiver or constructor call).
    shift: int = 0
    #: the constructed class, for ``Cls(...)`` calls (dataclasses have no
    #: explicit ``__init__`` in the AST, but field bindings still matter).
    cls: "ClassDecl | None" = None


@dataclass
class Project:
    """All analyzed modules plus the global resolution tables."""

    modules: dict[str, ModuleDecl] = field(default_factory=dict)
    #: dotted function key → declaration.
    functions: dict[str, FunctionDecl] = field(default_factory=dict)
    #: bare class name → declarations (several modules may reuse a name).
    classes_by_name: dict[str, list[ClassDecl]] = field(default_factory=dict)
    #: dotted class key → declaration.
    classes: dict[str, ClassDecl] = field(default_factory=dict)

    def add_module(self, decl: ModuleDecl) -> None:
        self.modules[decl.module] = decl
        for fn in decl.functions.values():
            self.functions[fn.key] = fn
        for cls in decl.classes.values():
            self.classes[cls.key] = cls
            self.classes_by_name.setdefault(cls.name, []).append(cls)

    # -- class/method lookup -------------------------------------------------

    def find_class(self, decl: ModuleDecl, name: str) -> ClassDecl | None:
        """Resolve a class referenced by (possibly aliased) name in a module."""
        if name in decl.classes:
            return decl.classes[name]
        target = decl.resolve_local(name)
        if target is not None:
            return self.class_for_target(target)
        return None

    def method_of(self, cls: ClassDecl, name: str) -> FunctionDecl | None:
        """Look up a method, walking base classes by bare name."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop()
            if cur.key in seen:
                continue
            seen.add(cur.key)
            local = cur.methods.get(name)
            if local is not None:
                fn = self.functions.get(f"{cur.module}.{local}")
                if fn is not None:
                    return fn
            for base in cur.bases:
                stack.extend(self.classes_by_name.get(base, []))
        return None

    def methods_named(self, name: str) -> list[FunctionDecl]:
        """Dynamic-dispatch fallback: every known method with this name."""
        out: list[FunctionDecl] = []
        for classes in self.classes_by_name.values():
            for cls in classes:
                local = cls.methods.get(name)
                if local is not None:
                    fn = self.functions.get(f"{cls.module}.{local}")
                    if fn is not None:
                        out.append(fn)
        return out

    # -- call resolution -----------------------------------------------------

    def resolve_ref(self, ref: CallRef) -> ResolvedCall:
        """Resolve a symbolic :class:`CallRef` against the project tables.

        Returns the reachable project functions plus the external dotted
        name (for taint-source matching) when the call leaves the project.
        ``shift`` is 1 when the resolved targets are methods called with a
        bound receiver (so positional arg *j* binds parameter *j + 1*).
        """
        if ref.kind == "dotted":
            return self._resolve_dotted_ref(ref.target, retry_alias=True)

        # method call with a bound receiver
        targets: list[FunctionDecl] = []
        if ref.recv_type is not None:
            decl = self.modules.get(ref.module)
            cls = self.find_class(decl, ref.recv_type) if decl else None
            if cls is None:
                for cand in self.classes_by_name.get(ref.recv_type, []):
                    cls = cand
                    break
            if cls is not None:
                fn = self.method_of(cls, ref.target)
                if fn is not None:
                    targets = [fn]
        if not targets and ref.recv_type is None:
            # dynamic dispatch fallback: every known method with this name
            targets = self.methods_named(ref.target)
        return ResolvedCall(targets=targets, shift=1)

    def _resolve_dotted_ref(self, target: str, *, retry_alias: bool) -> ResolvedCall:
        cls = self.class_for_target(target)
        if cls is not None:
            init = self.method_of(cls, "__init__")
            return ResolvedCall(
                targets=[init] if init is not None else [], shift=1, cls=cls
            )
        fns = self._resolve_dotted(target)
        if fns:
            return ResolvedCall(targets=fns)
        if not retry_alias:
            return ResolvedCall(external=target)
        # alias chains: `wall_clock = time.perf_counter` in another module
        external = self.resolve_external_alias(target)
        if external != target:
            return self._resolve_dotted_ref(external, retry_alias=False)
        return ResolvedCall(external=external)

    def class_for_target(self, target: str) -> ClassDecl | None:
        """Resolve a dotted name to a class, tolerating package re-exports."""
        cls = self.classes.get(target)
        if cls is not None:
            return cls
        bare = target.rsplit(".", 1)[-1]
        cands = self.classes_by_name.get(bare, [])
        for cand in cands:
            if cand.key == target:
                return cand
        # `from repro.dfs import Cluster` when the class lives in a submodule
        if target.startswith("repro.") and len(cands) == 1:
            return cands[0]
        return None

    def _resolve_dotted(self, target: str) -> list[FunctionDecl]:
        """A dotted name as a project function or ``Cls.method``."""
        fn = self.functions.get(target)
        if fn is not None:
            return [fn]
        if "." in target:
            # Cls.method spelled through the class (unbound call, no shift)
            head, attr = target.rsplit(".", 1)
            cls = self.class_for_target(head)
            if cls is not None:
                fn = self.method_of(cls, attr)
                return [fn] if fn is not None else []
            # package re-export: `from repro.dfs import make_cluster`
            if target.startswith("repro."):
                prefix = head + "."
                cands = [
                    f
                    for key, f in self.functions.items()
                    if f.local_qualname == attr and key.startswith(prefix)
                ]
                if len(cands) == 1:
                    return cands
        return []

    def resolve_external_alias(self, target: str) -> str:
        """Follow cross-module assign-aliases to the external dotted name."""
        seen: set[str] = set()
        while target not in seen:
            seen.add(target)
            mod_name, _, bound = target.rpartition(".")
            mod = self.modules.get(mod_name)
            if mod is not None and bound in mod.assign_aliases:
                target = mod.assign_aliases[bound]
                continue
            break
        return target

    # -- dependency closure (drives cache invalidation) ----------------------

    def closure_of(self, module: str) -> set[str]:
        """Transitive in-project dependencies of a module, including itself."""
        out: set[str] = set()
        stack = [module]
        while stack:
            cur = stack.pop()
            if cur in out:
                continue
            decl = self.modules.get(cur)
            if decl is None:
                # `from repro.x import name` records dep "repro.x.name" when
                # name is a function — strip one component and retry.
                parent = cur.rpartition(".")[0]
                if parent and parent not in out and parent in self.modules:
                    stack.append(parent)
                continue
            out.add(cur)
            stack.extend(decl.deps)
        return out


def build_project(
    sources: list[tuple[str, str, str | None]],
) -> Project:
    """Build a project from ``(path, source, module-or-None)`` triples."""
    project = Project()
    for path, source, module in sources:
        project.add_module(parse_module(source, path=path, module=module))
    return project


def build_call_ref(
    decl: ModuleDecl,
    call: ast.Call,
    *,
    params: dict[str, int],
    local_types: dict[str, str] | None = None,
    current_class: str | None = None,
) -> CallRef | None:
    """Reduce a call expression to its symbolic :class:`CallRef`.

    ``params`` maps the enclosing function's parameter names to indices;
    ``local_types`` maps local variables to inferred class names.  Both
    shadow module-level bindings, matching Python scoping.
    """
    local_types = local_types or {}

    def param_of(node: ast.expr) -> int | None:
        if isinstance(node, ast.Name):
            return params.get(node.id)
        return None

    def alias_root_of(node: ast.expr) -> int | None:
        # attribute/subscript chains reach into the root's object graph;
        # call results do NOT (a returned copy insulates the receiver)
        while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            node = node.value
        if isinstance(node, ast.Name):
            return params.get(node.id)
        return None

    positional = [a for a in call.args if not isinstance(a, ast.Starred)]
    arg_params = [param_of(a) for a in positional]
    kw_params = {
        kw.arg: param_of(kw.value) for kw in call.keywords if kw.arg is not None
    }
    base = dict(
        module=decl.module,
        line=call.lineno,
        col=call.col_offset,
        arg_params=arg_params,
        kw_params=kw_params,
        arg_roots=[alias_root_of(a) for a in positional],
        kw_roots={
            kw.arg: alias_root_of(kw.value)
            for kw in call.keywords
            if kw.arg is not None
        },
        nargs=len(call.args) + len(call.keywords),
    )

    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in decl.functions or name in decl.classes:
            return CallRef(kind="dotted", target=f"{decl.module}.{name}", **base)
        return CallRef(kind="dotted", target=decl.expand(name), **base)

    if not isinstance(func, ast.Attribute):
        return None

    full = dotted(func)
    if full is None:
        # complex receiver (subscript chain): self.datanodes[i].m(...)
        return CallRef(
            kind="method",
            target=func.attr,
            recv_param=alias_root_of(func.value),
            **base,
        )

    head, _, rest = full.partition(".")
    if head == "self" and current_class is not None:
        recv_type: str | None = current_class
        if "." in rest:
            # self.attr.method(): type the receiver via the field annotation
            recv_type = None
            cls = decl.classes.get(current_class)
            ann = cls.field_annotations.get(rest.partition(".")[0]) if cls else None
            for root in sorted(annotation_roots(ann)):
                if root and root[0].isupper():
                    recv_type = root
                    break
        return CallRef(
            kind="method",
            target=func.attr,
            recv_type=recv_type,
            recv_param=params.get("self"),
            **base,
        )

    if head in params or head in local_types:
        return CallRef(
            kind="method",
            target=func.attr,
            recv_type=local_types.get(head),
            recv_param=params.get(head),
            **base,
        )

    if decl.resolve_local(head) is not None:
        return CallRef(kind="dotted", target=decl.expand(full), **base)
    if head in decl.classes:
        return CallRef(kind="dotted", target=f"{decl.module}.{full}", **base)

    # untyped local receiver → dynamic dispatch fallback at resolution
    return CallRef(kind="method", target=func.attr, **base)
