"""Interprocedural rules OPS101–OPS103 (`opass-verify`).

These rules consume the fixed-point summaries of
:mod:`repro.tools.summaries` — they never walk a callee's body at a
call site, so a fact N call levels deep costs the same as a local one:

* **OPS101 — determinism taint.**  Entropy sources (wall clock, ``id``,
  ``os.urandom``, *unseeded* ``np.random.default_rng()``, …) must not
  reach scheduler/placement decision code (the ``core``/``dfs``
  packages), and neither entropy nor ``np.random.Generator`` machinery
  may be written to a module-level global anywhere.  Direct wall-clock
  and ``np.random`` global-state calls are deliberately *not* re-flagged
  here — OPS001/OPS002 own those sites; OPS101 adds the flows they
  cannot see (a tainted value returned through N project-internal
  calls, a draw from an unseeded generator held in a local).
* **OPS102 — unit/dimension mixing.**  Using the
  :mod:`repro.tools.units` lattice (bytes / seconds / bytes_per_sec /
  count), flags ``+``/``-``/comparisons between different known units,
  argument-to-parameter bindings that cross units (including dataclass
  constructor fields), and returns that contradict the declared return
  unit.  Unknown units never flag.
* **OPS103 — scheduler purity.**  Functions in the matching-kernel
  modules must not transitively mutate a parameter annotated with a
  protected DFS state type (``Cluster``/``NameNode``/``DataNode``/
  ``DistributedFileSystem``) and must not write module globals.

Every violation is attributed to a concrete line in the module under
check, so PR 2's per-line suppression pragmas work unchanged.
"""

from __future__ import annotations

import ast

from .astutils import ENTROPY_CALLS, root_name
from .callgraph import CallRef, FunctionDecl, ModuleDecl, ResolvedCall, build_call_ref
from .config import LintConfig
from .model import Violation
from .summaries import (
    TAINT_ENTROPY,
    TAINT_RNG,
    ProjectSummaries,
    bind_param,
    class_type_root,
    declared_return_unit,
    external_taint,
    infer_local_types,
    is_rng_annotation,
)
from .units import combine_add, combine_div, combine_mul, unit_of_annotation, unit_of_name

#: rule id → one-line description (merged into ``--list-rules``).
INTERPROC_RULES: dict[str, str] = {
    "OPS101": "nondeterminism reaches decision code or a module global (taint)",
    "OPS102": "cross-unit arithmetic/binding (bytes vs seconds vs bytes_per_sec)",
    "OPS103": "matching kernel transitively mutates DFS state (purity contract)",
}

_UNIT_WRAPPERS = frozenset({"min", "max", "abs", "sum", "float", "int", "round"})

_ORDERED_CMP = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _package_of(module: str) -> str | None:
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return None


def _module_level_stmts(tree: ast.Module) -> list[ast.stmt]:
    """Statements executed at import time (not inside defs/classes)."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)
    return out


class _Scope:
    """Shared call resolution + taint/unit environments for one body."""

    def __init__(
        self,
        decl: ModuleDecl,
        summaries: ProjectSummaries,
        *,
        body: list[ast.stmt],
        fn: FunctionDecl | None = None,
    ) -> None:
        self.decl = decl
        self.ps = summaries
        self.fn = fn
        self.body = body
        self.params = (
            {name: i for i, name in enumerate(fn.params)} if fn is not None else {}
        )
        self.local_types = (
            infer_local_types(decl, fn) if fn is not None else {}
        )
        self.calls: dict[int, tuple[CallRef, ResolvedCall]] = {}
        for node in self._walk():
            if isinstance(node, ast.Call):
                ref = build_call_ref(
                    decl,
                    node,
                    params=self.params,
                    local_types=self.local_types,
                    current_class=fn.class_name if fn is not None else None,
                )
                if ref is not None:
                    self.calls[id(node)] = (ref, summaries.project.resolve_ref(ref))
        self.taint_env: dict[str, set[str]] = {}
        if fn is not None:
            for name, ann in zip(fn.params, fn.param_annotation_nodes):
                if is_rng_annotation(decl, ann):
                    self.taint_env[name] = {TAINT_RNG}
        self._build_taint_env()
        self._unit_memo: dict[int, str | None] = {}
        self.unit_env: dict[str, str | None] = {}
        if fn is not None:
            fixed = summaries.param_units.get(fn.key, ())
            for i, name in enumerate(fn.params):
                if i < len(fixed) and fixed[i] is not None:
                    self.unit_env[name] = fixed[i]
        self._build_unit_env()

    def _walk(self):
        for stmt in self.body:
            yield from ast.walk(stmt)

    # -- taint ---------------------------------------------------------------

    def taint_of(self, expr: ast.expr | None) -> frozenset[str]:
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Name):
            if expr.id in self.taint_env:
                return frozenset(self.taint_env[expr.id])
            return frozenset()
        if isinstance(expr, ast.Call):
            return self.call_taint(expr)
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred, ast.Await)):
            return self.taint_of(expr.value)
        out: set[str] = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out |= self.taint_of(child)
        return frozenset(out)

    def call_taint(self, call: ast.Call) -> frozenset[str]:
        entry = self.calls.get(id(call))
        if entry is None:
            return frozenset()
        ref, rc = entry
        out: set[str] = set()
        if rc.external is not None:
            out |= external_taint(rc.external, ref.nargs)
        for target in rc.targets:
            out |= self.ps.return_taint.get(target.key, frozenset())
            for i in self.ps.return_params.get(target.key, frozenset()):
                arg = self._arg_node(call, ref, rc, target, i)
                if arg is not None:
                    out |= self.taint_of(arg)
        # drawing from an entropy-tainted generator is itself entropy
        if ref.kind == "method" and isinstance(call.func, ast.Attribute):
            if TAINT_ENTROPY in self.taint_of(call.func.value):
                out.add(TAINT_ENTROPY)
        return frozenset(out)

    def _arg_node(
        self,
        call: ast.Call,
        ref: CallRef,
        rc: ResolvedCall,
        target: FunctionDecl,
        callee_idx: int,
    ) -> ast.expr | None:
        if rc.shift == 1 and callee_idx == 0:
            func = call.func
            return func.value if isinstance(func, ast.Attribute) else None
        pos = callee_idx - rc.shift
        positional = [a for a in call.args if not isinstance(a, ast.Starred)]
        if 0 <= pos < len(positional):
            return positional[pos]
        if callee_idx < len(target.params):
            name = target.params[callee_idx]
            for kw in call.keywords:
                if kw.arg == name:
                    return kw.value
        return None

    def _build_taint_env(self) -> None:
        for _ in range(10):
            changed = False
            for node in self._walk():
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    if node.value is None:
                        continue
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.NamedExpr):
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.For):
                    targets, value = [node.target], node.iter
                else:
                    continue
                taint = self.taint_of(value)
                if not taint:
                    continue
                for t in ast.walk(ast.Tuple(elts=targets, ctx=ast.Store())):
                    if isinstance(t, ast.Name):
                        cur = self.taint_env.setdefault(t.id, set())
                        if not taint <= cur:
                            cur |= taint
                            changed = True
            if not changed:
                break

    # -- units ---------------------------------------------------------------

    def unit_of(self, expr: ast.expr | None) -> str | None:
        if expr is None:
            return None
        memo = self._unit_memo
        key = id(expr)
        if key in memo:
            return memo[key]
        memo[key] = None  # cycle guard
        unit = self._unit_of(expr)
        memo[key] = unit
        return unit

    def _unit_of(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id in self.unit_env:
                return self.unit_env[expr.id]
            return unit_of_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._attribute_unit(expr)
        if isinstance(expr, ast.Subscript):
            return self.unit_of(expr.value)
        if isinstance(expr, ast.Call):
            return self._call_unit(expr)
        if isinstance(expr, ast.BinOp):
            left, right = self.unit_of(expr.left), self.unit_of(expr.right)
            if isinstance(expr.op, (ast.Add, ast.Sub)):
                return combine_add(left, right)[0]
            if isinstance(expr.op, ast.Mult):
                return combine_mul(left, right)
            if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
                return combine_div(left, right)
            return None
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand)
        if isinstance(expr, ast.IfExp):
            body, orelse = self.unit_of(expr.body), self.unit_of(expr.orelse)
            return body if body == orelse else None
        if isinstance(expr, ast.NamedExpr):
            return self.unit_of(expr.value)
        return None

    def _attribute_unit(self, expr: ast.Attribute) -> str | None:
        base = expr.value
        recv_type: str | None = None
        if isinstance(base, ast.Name):
            recv_type = self.local_types.get(base.id)
        elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            if base.value.id == "self" and self.fn is not None and self.fn.class_name:
                cls = self.decl.classes.get(self.fn.class_name)
                ann = cls.field_annotations.get(base.attr) if cls else None
                recv_type = class_type_root(self.decl, ann)
        if recv_type is not None:
            unit = self._field_unit(recv_type, expr.attr)
            if unit is not None:
                return unit
        if (
            isinstance(base, ast.Name)
            and base.id == "self"
            and self.fn is not None
            and self.fn.class_name
        ):
            unit = self._field_unit(self.fn.class_name, expr.attr)
            if unit is not None:
                return unit
        return unit_of_name(expr.attr)

    def _field_unit(self, recv_type: str, attr: str) -> str | None:
        cls = self.ps.project.find_class(self.decl, recv_type)
        if cls is None:
            cands = self.ps.project.classes_by_name.get(recv_type, [])
            cls = cands[0] if len(cands) == 1 else None
        if cls is None:
            return None
        ann = cls.field_annotations.get(attr)
        if ann is None:
            return None
        mod = self.ps.project.modules.get(cls.module)
        return unit_of_annotation(ann, mod.resolve_local if mod else None)

    def _call_unit(self, call: ast.Call) -> str | None:
        if isinstance(call.func, ast.Name) and call.func.id in _UNIT_WRAPPERS:
            units = {self.unit_of(a) for a in call.args} - {None}
            if len(units) == 1:
                return next(iter(units))
            return None
        entry = self.calls.get(id(call))
        if entry is None:
            return None
        _, rc = entry
        units = {
            self.ps.return_unit.get(t.key)
            for t in rc.targets
            if self.ps.return_unit.get(t.key) is not None
        }
        if len(units) == 1:
            return next(iter(units))
        return None

    def _build_unit_env(self) -> None:
        for _ in range(4):
            changed = False
            for node in self._walk():
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                else:
                    continue
                if not isinstance(target, ast.Name) or target.id in self.unit_env:
                    continue
                if isinstance(node, ast.AnnAssign):
                    unit = unit_of_annotation(node.annotation, self.decl.resolve_local)
                    if unit is not None:
                        self.unit_env[target.id] = unit
                        changed = True
                        continue
                self._unit_memo.clear()
                unit = self.unit_of(value)
                if unit is not None:
                    self.unit_env[target.id] = unit
                    changed = True
            if not changed:
                break
        self._unit_memo.clear()


def check_module_interproc(
    decl: ModuleDecl,
    summaries: ProjectSummaries,
    config: LintConfig | None = None,
) -> list[Violation]:
    """Run OPS101–OPS103 over one module using project-wide summaries."""
    config = config if config is not None else LintConfig()
    out: list[Violation] = []
    package = _package_of(decl.module)
    decision = package in config.decision_packages and config.in_scope(
        "OPS101", package
    )
    taint_on = config.in_scope("OPS101", package)
    units_on = config.in_scope("OPS102", package)
    pure = any(
        decl.module == p or decl.module.startswith(p + ".")
        for p in config.pure_modules
    )

    def violation(rule: str, node: ast.AST, message: str) -> None:
        out.append(
            Violation(
                file=decl.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    # ---- module level ------------------------------------------------------
    top = _module_level_stmts(decl.tree)
    scope = _Scope(decl, summaries, body=top)
    if taint_on:
        _check_global_writes(scope, top, violation, module_level=True)
    if decision:
        _check_decision_taint(scope, violation)

    # ---- functions ---------------------------------------------------------
    for fn in decl.functions.values():
        scope = _Scope(decl, summaries, body=list(fn.node.body), fn=fn)
        if taint_on or pure:
            _check_function_globals(
                scope, fn, violation, pure=pure, taint_on=taint_on
            )
        if decision:
            _check_decision_taint(scope, violation)
        if units_on:
            _check_units(scope, fn, violation)
        if pure:
            _check_purity(decl, fn, summaries, config, violation)

    return out


# ---- OPS101 ----------------------------------------------------------------


def _taint_blames(scope: _Scope, call: ast.Call) -> list[str]:
    """Why a call result is entropy-tainted — empty if OPS101 stays quiet.

    Direct wall-clock / ``random`` / ``np.random`` global-state calls are
    OPS001/OPS002 territory; everything else that carries entropy here
    (project-internal returns, ``id``/``uuid4``-style calls, draws from
    an entropy generator) is OPS101's to report.
    """
    entry = scope.calls.get(id(call))
    if entry is None:
        return []
    ref, rc = entry
    blames: list[str] = []
    if rc.external is not None and rc.external in ENTROPY_CALLS:
        blames.append(f"call to {rc.external}")
    for target in rc.targets:
        taint = scope.ps.return_taint.get(target.key, frozenset())
        if TAINT_ENTROPY in taint:
            blames.append(f"return value of {target.key}")
        for i in scope.ps.return_params.get(target.key, frozenset()):
            arg = scope._arg_node(call, ref, rc, target, i)
            if arg is not None and TAINT_ENTROPY in scope.taint_of(arg):
                blames.append(f"argument forwarded through {target.key}")
    if ref.kind == "method" and isinstance(call.func, ast.Attribute):
        if TAINT_ENTROPY in scope.taint_of(call.func.value):
            blames.append("draw from an entropy-tainted generator")
    return blames


def _check_decision_taint(scope: _Scope, violation) -> None:
    for node in scope._walk():
        if not isinstance(node, ast.Call):
            continue
        blames = _taint_blames(scope, node)
        if blames:
            violation(
                "OPS101",
                node,
                "entropy reaches scheduler/placement decision code: "
                + "; ".join(sorted(set(blames))),
            )


def _tainted_global_kinds(scope: _Scope, value: ast.expr) -> str | None:
    taint = scope.taint_of(value)
    if TAINT_ENTROPY in taint:
        return "entropy (run-to-run varying value)"
    if TAINT_RNG in taint:
        return "np.random.Generator machinery (hidden shared stream)"
    return None


def _check_global_writes(
    scope: _Scope, stmts: list[ast.stmt], violation, *, module_level: bool
) -> None:
    for node in stmts:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if node.value is None:
                continue
            targets, value = [node.target], node.value
        else:
            continue
        if not any(isinstance(t, ast.Name) for t in targets):
            continue
        kinds = _tainted_global_kinds(scope, value)
        if kinds is not None:
            where = "module-level global" if module_level else "global"
            violation(
                "OPS101", node, f"{where} assignment stores {kinds}"
            )


def _check_function_globals(
    scope: _Scope, fn: FunctionDecl, violation, *, pure: bool, taint_on: bool
) -> None:
    declared_global: set[str] = set()
    for node in scope._walk():
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
            if pure:
                violation(
                    "OPS103",
                    node,
                    f"'{fn.name}' writes module global(s) "
                    f"{', '.join(node.names)} — matching kernels must be pure",
                )
    if not declared_global or not taint_on:
        return
    for node in scope._walk():
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if node.value is None:
                continue
            targets, value = [node.target], node.value
        else:
            continue
        names = {t.id for t in targets if isinstance(t, ast.Name)}
        if not names & declared_global:
            continue
        kinds = _tainted_global_kinds(scope, value)
        if kinds is not None:
            violation("OPS101", node, f"global assignment stores {kinds}")


# ---- OPS102 ----------------------------------------------------------------


def _check_units(scope: _Scope, fn: FunctionDecl, violation) -> None:
    declared_ret = declared_return_unit(scope.decl, fn)
    for node in scope._walk():
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left, right = scope.unit_of(node.left), scope.unit_of(node.right)
            _, mismatch = combine_add(left, right)
            if mismatch:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                violation(
                    "OPS102", node, f"unit mismatch: {left} {op} {right}"
                )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left, right = scope.unit_of(node.target), scope.unit_of(node.value)
            _, mismatch = combine_add(left, right)
            if mismatch:
                violation(
                    "OPS102", node, f"unit mismatch: {left} += {right}"
                )
        elif isinstance(node, ast.Compare):
            left_unit = scope.unit_of(node.left)
            for op, comp in zip(node.ops, node.comparators):
                if not isinstance(op, _ORDERED_CMP):
                    left_unit = scope.unit_of(comp)
                    continue
                right_unit = scope.unit_of(comp)
                if (
                    left_unit is not None
                    and right_unit is not None
                    and left_unit != right_unit
                ):
                    violation(
                        "OPS102",
                        node,
                        f"unit mismatch in comparison: {left_unit} vs {right_unit}",
                    )
                left_unit = right_unit
        elif isinstance(node, ast.Call):
            _check_call_units(scope, node, violation)
        elif isinstance(node, ast.Return) and node.value is not None:
            if declared_ret is not None:
                got = scope.unit_of(node.value)
                if got is not None and got != declared_ret:
                    violation(
                        "OPS102",
                        node,
                        f"returns {got} but is declared to return {declared_ret}",
                    )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            want = unit_of_annotation(node.annotation, scope.decl.resolve_local)
            got = scope.unit_of(node.value)
            if want is not None and got is not None and want != got:
                violation(
                    "OPS102",
                    node,
                    f"assigns {got} to a binding annotated {want}",
                )


def _check_call_units(scope: _Scope, call: ast.Call, violation) -> None:
    entry = scope.calls.get(id(call))
    if entry is None:
        return
    ref, rc = entry

    def check(arg: ast.expr, want: str | None, label: str) -> None:
        if want is None:
            return
        got = scope.unit_of(arg)
        if got is not None and got != want:
            violation(
                "OPS102",
                call,
                f"argument {label} is {got} but parameter expects {want}",
            )

    if len(rc.targets) == 1:
        target = rc.targets[0]
        units = scope.ps.param_units.get(target.key, ())
        positional = [a for a in call.args if not isinstance(a, ast.Starred)]
        for j, arg in enumerate(positional):
            i = j + rc.shift
            if i < len(units):
                check(arg, units[i], f"{j + 1} of {target.key}")
        for kw in call.keywords:
            if kw.arg is None:
                continue
            try:
                i = target.params.index(kw.arg)
            except ValueError:
                continue
            if i < len(units):
                check(kw.value, units[i], f"'{kw.arg}' of {target.key}")
    elif rc.cls is not None and not rc.targets:
        # dataclass construction: bind args to annotated fields in order
        fields = list(rc.cls.field_annotations)
        mod = scope.ps.project.modules.get(rc.cls.module)
        resolve = mod.resolve_local if mod else None

        def field_unit(name: str) -> str | None:
            ann = rc.cls.field_annotations.get(name)
            return unit_of_annotation(ann, resolve) if ann is not None else None

        positional = [a for a in call.args if not isinstance(a, ast.Starred)]
        for j, arg in enumerate(positional):
            if j < len(fields):
                check(arg, field_unit(fields[j]), f"'{fields[j]}' of {rc.cls.key}")
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in rc.cls.field_annotations:
                check(kw.value, field_unit(kw.arg), f"'{kw.arg}' of {rc.cls.key}")


# ---- OPS103 ----------------------------------------------------------------


def _check_purity(
    decl: ModuleDecl,
    fn: FunctionDecl,
    summaries: ProjectSummaries,
    config: LintConfig,
    violation,
) -> None:
    mutated = summaries.mutates.get(fn.key, frozenset())
    if not mutated:
        return
    local = summaries.locals.get(fn.key)
    for i in sorted(mutated):
        if i >= len(fn.params):
            continue
        root = class_type_root(decl, fn.param_annotation_nodes[i])
        if root not in config.protected_types:
            continue
        how = "directly"
        if local is not None and i not in local.mutated_params:
            for ref, rc in zip(local.calls, summaries.resolved.get(fn.key, [])):
                culprit = next(
                    (
                        t.key
                        for t in rc.targets
                        if any(
                            bind_param(ref, rc, t, j, alias=True) == i
                            for j in summaries.mutates.get(t.key, frozenset())
                        )
                    ),
                    None,
                )
                if culprit is not None:
                    how = f"via {culprit}"
                    break
        violation(
            "OPS103",
            fn.node,
            f"'{fn.local_qualname}' mutates parameter '{fn.params[i]}' of "
            f"protected type {root} ({how}) — matching kernels must be "
            "pure readers of the block layout",
        )
