"""`opass-lint` / `opass-verify`: static analysis for the reproduction.

The simulator's claims — bit-reproducible runs from a seed, an
incremental allocator equivalent to the reference solver, strict package
layering — are properties the test suite can only spot-check.  This
package enforces them statically, on every commit:

* :mod:`repro.tools.lint` — the intraprocedural front end
  (``python -m repro.tools.lint src/``, rules OPS000–OPS006);
* :mod:`repro.tools.verify` — the interprocedural front end
  (``python -m repro.tools.verify src/``, rules OPS101–OPS103:
  determinism taint, unit/dimension checking, scheduler purity);
* :mod:`repro.tools.api` — the programmatic entry used by the test
  suite (``lint_source`` / ``lint_file`` / ``lint_paths``);
* :mod:`repro.tools.checks` — the per-module AST rules (OPS001–OPS006);
* :mod:`repro.tools.callgraph` / :mod:`repro.tools.summaries` /
  :mod:`repro.tools.interproc` — the project-wide call-graph and
  dataflow-summary engine behind OPS101–OPS103;
* :mod:`repro.tools.cache` — the content-addressed incremental cache
  (``.opass-cache/``);
* :mod:`repro.tools.config` — ``[tool.opass-lint]`` configuration.

``repro.tools`` sits at the top of the package layering DAG and must not
be imported by any other ``repro`` package.
"""

from .api import ALL_RULES, LintReport, lint_file, lint_paths, lint_source
from .cache import AnalysisCache, CacheStats
from .checks import RULES
from .config import DEFAULT_LAYERS, LintConfig, load_config
from .interproc import INTERPROC_RULES
from .model import Violation


def __getattr__(name: str):
    # verify is imported lazily so `python -m repro.tools.verify` does not
    # trip runpy's found-in-sys.modules warning.
    if name in ("verify_paths", "verify_source"):
        from . import verify

        return getattr(verify, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "CacheStats",
    "DEFAULT_LAYERS",
    "INTERPROC_RULES",
    "LintConfig",
    "LintReport",
    "RULES",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "verify_paths",
    "verify_source",
]
