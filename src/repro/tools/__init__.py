"""`opass-lint`: codebase-specific static analysis for the reproduction.

The simulator's claims — bit-reproducible runs from a seed, an
incremental allocator equivalent to the reference solver, strict package
layering — are properties the test suite can only spot-check.  This
package enforces them statically, on every commit:

* :mod:`repro.tools.lint` — the command-line front end
  (``python -m repro.tools.lint src/``);
* :mod:`repro.tools.api` — the programmatic entry used by the test
  suite (``lint_source`` / ``lint_file`` / ``lint_paths``);
* :mod:`repro.tools.checks` — the AST rule implementations
  (OPS001–OPS006);
* :mod:`repro.tools.config` — ``[tool.opass-lint]`` configuration.

``repro.tools`` sits at the top of the package layering DAG and must not
be imported by any other ``repro`` package.
"""

from .api import LintReport, lint_file, lint_paths, lint_source
from .checks import RULES
from .config import DEFAULT_LAYERS, LintConfig, load_config
from .model import Violation

__all__ = [
    "DEFAULT_LAYERS",
    "LintConfig",
    "LintReport",
    "RULES",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
]
