"""Multi-data experiments: Figures 9 and 10 as importable functions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.multi_input import MultiInputComparison, MultiInputOutcome
from ..core.bipartite import ProcessPlacement
from ..dfs.cluster import ClusterSpec
from ..dfs.filesystem import DistributedFileSystem
from ..metrics.recorder import ServeMonitor
from ..workloads.generators import multi_input_datasets


@dataclass
class MultiDataComparison:
    """Default vs Algorithm-1 assignment on the §V-A2 workload."""

    base: MultiInputOutcome
    opass: MultiInputOutcome
    base_served_mb: np.ndarray
    opass_served_mb: np.ndarray

    @property
    def io_improvement(self) -> float:
        base_avg = self.base.result.io_stats()["avg"]
        opass_avg = self.opass.result.io_stats()["avg"]
        return base_avg / opass_avg if opass_avg else float("inf")


def run_multi_data_comparison(
    *,
    num_nodes: int = 64,
    num_tasks: int = 640,
    input_sizes_mb: tuple[int, ...] = (30, 20, 10),
    seed: int = 0,
) -> MultiDataComparison:
    """Figures 9/10: multi-input tasks, default vs Opass, same layout."""
    fs = DistributedFileSystem(ClusterSpec.homogeneous(num_nodes), seed=seed)
    datasets = multi_input_datasets(num_tasks, input_sizes_mb=input_sizes_mb)
    for ds in datasets:
        fs.put_dataset(ds)
    placement = ProcessPlacement.one_per_node(num_nodes)

    monitor = ServeMonitor(fs)
    monitor.start()
    base = MultiInputComparison(fs, placement, datasets, use_opass=False).execute(
        seed=seed
    )
    base_served = monitor.served_mb_array()

    monitor.start()
    opass = MultiInputComparison(fs, placement, datasets, use_opass=True).execute(
        seed=seed
    )
    opass_served = monitor.served_mb_array()

    return MultiDataComparison(
        base=base,
        opass=opass,
        base_served_mb=base_served,
        opass_served_mb=opass_served,
    )
