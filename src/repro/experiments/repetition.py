"""Seed-repetition statistics: the paper's "We run the tests 5 times".

Every experiment function here is deterministic given its seed, so paper-
style replication is a seed sweep.  :func:`repeat` runs any experiment
over a seed list and aggregates named metrics into mean/std/min/max;
:func:`run_paraview_repeated` applies it to §V-B's headline totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, TypeVar

import numpy as np

from .paraview import ParaViewComparison, run_paraview_comparison

T = TypeVar("T")


@dataclass(frozen=True)
class MetricStats:
    """Replication statistics of one metric."""

    mean: float
    std: float
    min: float
    max: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.2f} ± {self.std:.2f} (n={self.n})"


@dataclass(frozen=True)
class RepeatedResult:
    """Aggregated metrics plus the raw per-seed outcomes."""

    metrics: dict[str, MetricStats]
    outcomes: list


def repeat(
    experiment: Callable[[int], T],
    metrics: Mapping[str, Callable[[T], float]],
    *,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> RepeatedResult:
    """Run ``experiment(seed)`` for every seed and aggregate the metrics.

    ``metrics`` maps metric names to extractors over the experiment's
    return value.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if not metrics:
        raise ValueError("need at least one metric")
    outcomes = [experiment(seed) for seed in seeds]
    aggregated: dict[str, MetricStats] = {}
    for name, extract in metrics.items():
        values = np.array([float(extract(o)) for o in outcomes])
        aggregated[name] = MetricStats(
            mean=float(values.mean()),
            std=float(values.std()),
            min=float(values.min()),
            max=float(values.max()),
            n=len(values),
        )
    return RepeatedResult(metrics=aggregated, outcomes=outcomes)


def run_paraview_repeated(
    *,
    num_nodes: int = 64,
    num_datasets: int = 640,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> RepeatedResult:
    """§V-B's protocol: 5 ParaView runs, averaged totals.

    The paper: "We run the tests 5 times and the average execution time of
    Paraview with Opass is around 98 second while that of Paraview without
    Opass is around 167 seconds."
    """
    def one(seed: int) -> ParaViewComparison:
        return run_paraview_comparison(
            num_nodes=num_nodes, num_datasets=num_datasets, seed=seed
        )

    return repeat(
        one,
        {
            "stock_total": lambda c: c.stock.total_execution_time,
            "opass_total": lambda c: c.opass.total_execution_time,
            "stock_avg_call": lambda c: c.stock.avg_call_time,
            "opass_avg_call": lambda c: c.opass.avg_call_time,
        },
        seeds=seeds,
    )
