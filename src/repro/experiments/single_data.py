"""Single-data experiments: Figures 1, 7 and 8 as importable functions.

Each function builds a fresh seeded environment, runs the baseline and/or
Opass, and returns a typed result — the benchmarks print and assert over
these, the CLI reuses them, and tests exercise them at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.baselines import rank_interval_assignment
from ..core.bipartite import ProcessPlacement
from ..core.opass import opass_single_data
from ..core.tasks import tasks_from_dataset
from ..dfs.cluster import ClusterSpec
from ..dfs.filesystem import DistributedFileSystem
from ..metrics.recorder import ServeMonitor
from ..simulate.runner import ParallelReadRun, RunResult, StaticSource
from ..workloads.generators import motivating_dataset, single_data_workload

#: The paper's Figure-7/8 cluster-size sweep.
SWEEP_SIZES = (16, 32, 48, 64, 80)


@dataclass
class SingleDataComparison:
    """One §V-A1 experiment: baseline and Opass runs on identical layouts."""

    num_nodes: int
    base: RunResult
    opass: RunResult
    base_served_mb: np.ndarray
    opass_served_mb: np.ndarray


def run_single_data_comparison(
    num_nodes: int,
    *,
    chunks_per_process: int = 10,
    seed: int = 0,
) -> SingleDataComparison:
    """Run the paper's single-data benchmark once at the given scale."""
    spec = ClusterSpec.homogeneous(num_nodes)
    fs = DistributedFileSystem(spec, seed=seed)
    data = single_data_workload(num_nodes, chunks_per_process)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(num_nodes)
    tasks = tasks_from_dataset(data)

    monitor = ServeMonitor(fs)
    monitor.start()
    baseline = rank_interval_assignment(len(tasks), num_nodes)
    base = ParallelReadRun(
        fs, placement, tasks, StaticSource(baseline), seed=seed
    ).run()
    base_served = monitor.served_mb_array()

    monitor.start()
    result, _, _ = opass_single_data(fs, data, placement, seed=seed)
    opass = ParallelReadRun(
        fs, placement, tasks, StaticSource(result.assignment), seed=seed
    ).run()
    opass_served = monitor.served_mb_array()

    return SingleDataComparison(
        num_nodes=num_nodes,
        base=base,
        opass=opass,
        base_served_mb=base_served,
        opass_served_mb=opass_served,
    )


def run_sweep(
    sizes: tuple[int, ...] = SWEEP_SIZES,
    *,
    chunks_per_process: int = 10,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> dict[int, list[SingleDataComparison]]:
    """The Figure-7/8 sweep: every size × every seed."""
    return {
        m: [
            run_single_data_comparison(
                m, chunks_per_process=chunks_per_process, seed=s
            )
            for s in seeds
        ]
        for m in sizes
    }


@dataclass
class MotivationResult:
    """The Figure-1 experiment: the imbalance that motivates the paper."""

    run: RunResult
    chunks_served: np.ndarray  # per-node request counts


def run_motivating_experiment(
    *,
    num_nodes: int = 64,
    num_chunks: int = 128,
    seed: int = 0,
) -> MotivationResult:
    """Figure 1: rank-interval reads of n chunks on an m-node cluster."""
    fs = DistributedFileSystem(ClusterSpec.homogeneous(num_nodes), seed=seed)
    data = motivating_dataset(num_chunks)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(num_nodes)
    tasks = tasks_from_dataset(data)
    monitor = ServeMonitor(fs)
    monitor.start()
    run = ParallelReadRun(
        fs, placement, tasks,
        StaticSource(rank_interval_assignment(num_chunks, num_nodes)),
        seed=seed,
    ).run()
    return MotivationResult(run=run, chunks_served=monitor.chunks_served_array())
