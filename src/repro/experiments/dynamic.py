"""Dynamic (master/worker) experiments: Figure 11 as importable functions."""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.mpiblast import MpiBlastConfig, MpiBlastRun
from ..core.bipartite import ProcessPlacement
from ..dfs.cluster import ClusterSpec
from ..dfs.filesystem import DistributedFileSystem
from ..parallel.master_worker import MasterWorkerOutcome
from ..workloads.generators import gene_database


@dataclass
class DynamicComparison:
    """Default random master vs Opass guided lists (§V-A3)."""

    base: MasterWorkerOutcome
    opass: MasterWorkerOutcome

    @property
    def io_improvement(self) -> float:
        base_avg = self.base.result.io_stats()["avg"]
        opass_avg = self.opass.result.io_stats()["avg"]
        return base_avg / opass_avg if opass_avg else float("inf")


def run_dynamic_comparison(
    *,
    num_nodes: int = 64,
    num_fragments: int = 640,
    compute_mean: float = 0.3,
    compute_cv: float = 0.8,
    seed: int = 0,
) -> DynamicComparison:
    """Figure 11: mpiBLAST-style dynamic run, default vs Opass dispatch."""
    fs = DistributedFileSystem(ClusterSpec.homogeneous(num_nodes), seed=seed)
    db = gene_database(num_fragments)
    fs.put_dataset(db)
    placement = ProcessPlacement.one_per_node(num_nodes)
    config = MpiBlastConfig(compute_mean=compute_mean, compute_cv=compute_cv)

    base = MpiBlastRun(fs, placement, db, config=config, use_opass=False).execute(
        seed=seed
    )
    fs.reset_counters()
    opass = MpiBlastRun(fs, placement, db, config=config, use_opass=True).execute(
        seed=seed
    )
    return DynamicComparison(base=base, opass=opass)
