"""§V-C overhead and scalability experiments as importable functions."""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.bipartite import LocalityGraph, ProcessPlacement, graph_from_filesystem
from ..core.perf import SchedPerf
from ..core.single_data import optimize_single_data
from ..core.tasks import Task, tasks_from_dataset
from ..dfs.cluster import ClusterSpec
from ..dfs.filesystem import DistributedFileSystem
from ..simulate.runner import ParallelReadRun, StaticSource
from ..workloads.generators import single_data_workload


def build_single_data_graph(
    num_nodes: int,
    *,
    chunks_per_process: int = 10,
    seed: int = 0,
    perf: SchedPerf | None = None,
) -> tuple[DistributedFileSystem, ProcessPlacement, list[Task], LocalityGraph]:
    """A stored single-data workload plus its locality graph."""
    fs = DistributedFileSystem(ClusterSpec.homogeneous(num_nodes), seed=seed)
    data = single_data_workload(num_nodes, chunks_per_process)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(num_nodes)
    tasks = tasks_from_dataset(data)
    graph = graph_from_filesystem(fs, tasks, placement, perf=perf)
    return fs, placement, tasks, graph


@dataclass(frozen=True, slots=True)
class OverheadResult:
    """Matching wall-clock cost vs the (simulated) data access it plans."""

    matching_seconds: float
    access_seconds: float

    @property
    def overhead_fraction(self) -> float:
        if self.access_seconds == 0:
            return float("inf")
        return self.matching_seconds / self.access_seconds


def measure_matching_overhead(
    num_nodes: int = 64,
    *,
    chunks_per_process: int = 10,
    seed: int = 0,
    perf: SchedPerf | None = None,
) -> OverheadResult:
    """§V-C: 'the overhead created by the matching method was less than 1%
    of the overhead involved with accessing the whole dataset'."""
    fs, placement, tasks, graph = build_single_data_graph(
        num_nodes, chunks_per_process=chunks_per_process, seed=seed, perf=perf
    )
    t0 = time.perf_counter()
    matched = optimize_single_data(graph, seed=seed, perf=perf)
    matching_seconds = time.perf_counter() - t0
    run = ParallelReadRun(
        fs, placement, tasks, StaticSource(matched.assignment), seed=seed,
        sched_perf=perf,
    ).run()
    return OverheadResult(
        matching_seconds=matching_seconds, access_seconds=run.makespan
    )


@dataclass(frozen=True, slots=True)
class ScalabilityRow:
    """One point of the matching-time scaling sweep."""

    num_nodes: int
    num_tasks: int
    num_edges: int
    matching_ms: float
    #: simulated wall-clock of the data access the matching plans, when
    #: ``measure_io=True``; None otherwise.
    access_s: float | None = None

    @property
    def overhead_fraction(self) -> float | None:
        """Matching wall-clock as a fraction of simulated I/O time."""
        if access := self.access_s:
            return (self.matching_ms / 1000.0) / access
        return None


def matching_scalability_sweep(
    sizes: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024),
    *,
    chunks_per_process: int = 10,
    seed: int = 1,
    measure_io: bool = False,
    perf: SchedPerf | None = None,
) -> list[ScalabilityRow]:
    """Matching wall-clock across problem sizes (§V-C future work).

    With ``measure_io=True`` each point also simulates the planned run and
    reports matching cost as a fraction of the data-access time it buys —
    the paper's "<1 %" claim, tracked out to 1024 nodes.
    """
    rows = []
    for m in sizes:
        fs, placement, tasks, graph = build_single_data_graph(
            m, chunks_per_process=chunks_per_process, seed=seed, perf=perf
        )
        t0 = time.perf_counter()
        matched = optimize_single_data(graph, seed=seed, perf=perf)
        elapsed = (time.perf_counter() - t0) * 1000
        access_s: float | None = None
        if measure_io:
            run = ParallelReadRun(
                fs, placement, tasks, StaticSource(matched.assignment),
                seed=seed, sched_perf=perf,
            ).run()
            access_s = run.makespan
        rows.append(
            ScalabilityRow(
                num_nodes=m,
                num_tasks=m * chunks_per_process,
                num_edges=graph.num_edges,
                matching_ms=elapsed,
                access_s=access_s,
            )
        )
    return rows
