"""§V-C overhead and scalability experiments as importable functions."""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.bipartite import LocalityGraph, ProcessPlacement, graph_from_filesystem
from ..core.single_data import optimize_single_data
from ..core.tasks import Task, tasks_from_dataset
from ..dfs.cluster import ClusterSpec
from ..dfs.filesystem import DistributedFileSystem
from ..simulate.runner import ParallelReadRun, StaticSource
from ..workloads.generators import single_data_workload


def build_single_data_graph(
    num_nodes: int,
    *,
    chunks_per_process: int = 10,
    seed: int = 0,
) -> tuple[DistributedFileSystem, ProcessPlacement, list[Task], LocalityGraph]:
    """A stored single-data workload plus its locality graph."""
    fs = DistributedFileSystem(ClusterSpec.homogeneous(num_nodes), seed=seed)
    data = single_data_workload(num_nodes, chunks_per_process)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(num_nodes)
    tasks = tasks_from_dataset(data)
    return fs, placement, tasks, graph_from_filesystem(fs, tasks, placement)


@dataclass(frozen=True)
class OverheadResult:
    """Matching wall-clock cost vs the (simulated) data access it plans."""

    matching_seconds: float
    access_seconds: float

    @property
    def overhead_fraction(self) -> float:
        if self.access_seconds == 0:
            return float("inf")
        return self.matching_seconds / self.access_seconds


def measure_matching_overhead(
    num_nodes: int = 64,
    *,
    chunks_per_process: int = 10,
    seed: int = 0,
) -> OverheadResult:
    """§V-C: 'the overhead created by the matching method was less than 1%
    of the overhead involved with accessing the whole dataset'."""
    fs, placement, tasks, graph = build_single_data_graph(
        num_nodes, chunks_per_process=chunks_per_process, seed=seed
    )
    t0 = time.perf_counter()
    matched = optimize_single_data(graph, seed=seed)
    matching_seconds = time.perf_counter() - t0
    run = ParallelReadRun(
        fs, placement, tasks, StaticSource(matched.assignment), seed=seed
    ).run()
    return OverheadResult(
        matching_seconds=matching_seconds, access_seconds=run.makespan
    )


@dataclass(frozen=True)
class ScalabilityRow:
    """One point of the matching-time scaling sweep."""

    num_nodes: int
    num_tasks: int
    num_edges: int
    matching_ms: float


def matching_scalability_sweep(
    sizes: tuple[int, ...] = (16, 32, 64, 128, 256),
    *,
    chunks_per_process: int = 10,
    seed: int = 1,
) -> list[ScalabilityRow]:
    """Matching wall-clock across problem sizes (§V-C future work)."""
    rows = []
    for m in sizes:
        _, _, _, graph = build_single_data_graph(
            m, chunks_per_process=chunks_per_process, seed=seed
        )
        t0 = time.perf_counter()
        optimize_single_data(graph, seed=seed)
        elapsed = (time.perf_counter() - t0) * 1000
        rows.append(
            ScalabilityRow(
                num_nodes=m,
                num_tasks=m * chunks_per_process,
                num_edges=graph.num_edges,
                matching_ms=elapsed,
            )
        )
    return rows
