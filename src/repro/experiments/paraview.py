"""ParaView experiments: Figure 12 / §V-B as importable functions."""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.paraview import ParaViewConfig, ParaViewMultiBlockReader, ParaViewResult
from ..core.bipartite import ProcessPlacement
from ..dfs.cluster import ClusterSpec
from ..dfs.filesystem import DistributedFileSystem
from ..workloads.generators import paraview_multiblock_series


@dataclass
class ParaViewComparison:
    """Stock vs Opass-patched readers on the same series and layout."""

    stock: ParaViewResult
    opass: ParaViewResult

    @property
    def time_saved(self) -> float:
        return self.stock.total_execution_time - self.opass.total_execution_time


def run_paraview_comparison(
    *,
    num_nodes: int = 64,
    num_datasets: int = 640,
    config: ParaViewConfig | None = None,
    seed: int = 0,
) -> ParaViewComparison:
    """Figure 12: render the MultiBlock series with both readers."""
    fs = DistributedFileSystem(ClusterSpec.homogeneous(num_nodes), seed=seed)
    series = paraview_multiblock_series(num_datasets)
    fs.put_dataset(series)
    placement = ProcessPlacement.one_per_node(num_nodes)

    stock = ParaViewMultiBlockReader(
        fs, placement, series, config=config, use_opass=False
    ).render(seed=seed)
    fs.reset_counters()
    opass = ParaViewMultiBlockReader(
        fs, placement, series, config=config, use_opass=True, opass_seed=seed
    ).render(seed=seed)
    return ParaViewComparison(stock=stock, opass=opass)
