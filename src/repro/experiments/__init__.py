"""Typed, importable versions of every paper experiment.

The benchmark files in ``benchmarks/`` print and assert over these; the
CLI and downstream users call them directly:

>>> from repro.experiments import run_single_data_comparison
>>> cmp = run_single_data_comparison(16, seed=0)
>>> cmp.opass.locality_fraction
1.0
"""

from .dynamic import DynamicComparison, run_dynamic_comparison
from .multi_data import MultiDataComparison, run_multi_data_comparison
from .overhead import (
    OverheadResult,
    ScalabilityRow,
    build_single_data_graph,
    matching_scalability_sweep,
    measure_matching_overhead,
)
from .paraview import ParaViewComparison, run_paraview_comparison
from .repetition import MetricStats, RepeatedResult, repeat, run_paraview_repeated
from .single_data import (
    SWEEP_SIZES,
    MotivationResult,
    SingleDataComparison,
    run_motivating_experiment,
    run_single_data_comparison,
    run_sweep,
)

__all__ = [
    "SWEEP_SIZES",
    "DynamicComparison",
    "MetricStats",
    "MotivationResult",
    "MultiDataComparison",
    "OverheadResult",
    "ParaViewComparison",
    "RepeatedResult",
    "ScalabilityRow",
    "SingleDataComparison",
    "build_single_data_graph",
    "matching_scalability_sweep",
    "measure_matching_overhead",
    "repeat",
    "run_dynamic_comparison",
    "run_motivating_experiment",
    "run_multi_data_comparison",
    "run_paraview_comparison",
    "run_paraview_repeated",
    "run_single_data_comparison",
    "run_sweep",
]
