"""Data reconstruction: co-locating multi-input task data (MRAP-style).

§V-C concedes Opass's limit: "if a data processing task involves too many
inputs, our method may not work as well and data reconstruction/
redistribution [19, MRAP] may be needed.  Data reconstruction or
redistribution is beyond the scope of this paper."  This module implements
that out-of-scope step so the ablations can quantify the trade:

Given a set of multi-input tasks, pick an *anchor node* per task (the node
already holding the most of the task's data — a replica there becomes the
co-location point) and migrate one replica of every other input chunk to
it.  Anchors are chosen with a balance cap so reconstructed primaries
spread across the cluster.  After reconstruction each task has a node
where its entire input is local, so Algorithm 1 recovers (near-)full
locality — at the price of real data movement, which is reported.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .chunk import ChunkId
from .filesystem import DistributedFileSystem

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - avoid a dfs -> core import cycle
    from ..core.tasks import Task


@dataclass
class ReconstructionReport:
    """What a reconstruction pass moved."""

    anchor_of: dict[int, int] = field(default_factory=dict)  # task -> node
    copies: list[tuple[ChunkId, int]] = field(default_factory=list)
    bytes_copied: int = 0

    @property
    def num_copies(self) -> int:
        return len(self.copies)


def reconstruct_for_tasks(
    fs: DistributedFileSystem,
    tasks: "list[Task]",
    *,
    max_tasks_per_node: int | None = None,
) -> ReconstructionReport:
    """Co-locate every task's inputs on one anchor node.

    ``max_tasks_per_node`` caps how many tasks may anchor on the same node
    (default: the even share, ⌈tasks/nodes⌉) so the reconstructed layout
    stays balanced.  Copies are *added* replicas (registered with the
    NameNode and the anchor DataNode); nothing is deleted, mirroring an
    MRAP-style reorganisation that materialises an access-pattern-friendly
    copy.
    """
    if not tasks:
        return ReconstructionReport()
    nodes = fs.cluster.active_nodes
    if max_tasks_per_node is None:
        max_tasks_per_node = -(-len(tasks) // len(nodes))
    if max_tasks_per_node <= 0:
        raise ValueError("max_tasks_per_node must be positive")

    report = ReconstructionReport()
    anchor_load: dict[int, int] = {n: 0 for n in nodes}

    # Largest tasks first: they are the most expensive to move, so they get
    # first pick of anchors.
    sizes = {
        t.task_id: sum(fs.chunk(cid).size for cid in t.inputs) for t in tasks
    }
    for task in sorted(tasks, key=lambda t: (-sizes[t.task_id], t.task_id)):
        # Bytes of this task already present per candidate node.
        present: dict[int, int] = {}
        for cid in task.inputs:
            for node in fs.namenode.locations_of(cid):
                if node in anchor_load:
                    present[node] = present.get(node, 0) + fs.chunk(cid).size
        candidates = [n for n in nodes if anchor_load[n] < max_tasks_per_node]
        if not candidates:
            raise RuntimeError("anchor cap too tight for the task count")
        anchor = max(candidates, key=lambda n: (present.get(n, 0), -n))
        anchor_load[anchor] += 1
        report.anchor_of[task.task_id] = anchor
        for cid in task.inputs:
            if anchor in fs.namenode.locations_of(cid):
                continue
            size = fs.chunk(cid).size
            fs.datanodes[anchor].add_replica(cid, size)
            fs.namenode.add_replica(cid, anchor)
            report.copies.append((cid, anchor))
            report.bytes_copied += size
    logger.info(
        "reconstruction: %d tasks anchored, %d copies, %.1f MB moved",
        len(report.anchor_of), report.num_copies, report.bytes_copied / 1e6,
    )
    return report
