"""Layout snapshots: capture and replay an exact cluster data layout.

A reproduction claim is strongest when the *layout* — not just the seed —
can be shipped alongside the results.  These helpers serialise a stored
file system's datasets and chunk→replica map to JSON and restore them
into a fresh :class:`DistributedFileSystem`, bypassing the placement
policy entirely.  Together with :mod:`repro.core.serialization`'s
assignment files, a whole experiment becomes a pair of artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

from .chunk import Chunk, ChunkId, Dataset, FileMeta
from .filesystem import DistributedFileSystem

FORMAT_VERSION = 1

_TOKEN_MASK = (1 << 64) - 1


def layout_token(locations: dict[ChunkId, tuple[int, ...]]) -> int:
    """A cheap 64-bit content token for a chunk→replica-nodes map.

    Order-independent (summing per-entry hashes commutes), so two
    snapshots with the same chunk→nodes content produce the same token
    regardless of dict ordering; any replica move, add or drop changes
    an entry hash and thus (except for engineered collisions) the token.
    :class:`repro.dfs.NameNode` maintains the same token incrementally
    (``NameNode.layout_token``) so live file systems answer it in O(1);
    this function is the from-scratch definition the incremental one is
    tested against, and serves ad-hoc location dicts.  In-memory use
    only — ``hash`` is salted per interpreter, so tokens must never be
    persisted or compared across processes.
    """
    total = len(locations)
    for cid, nodes in locations.items():
        total = (total + hash((cid, nodes))) & _TOKEN_MASK
    return total


def snapshot_to_dict(fs: DistributedFileSystem) -> dict:
    """Serialise every dataset and replica location of a file system."""
    datasets = []
    for name in fs.namenode.list_datasets():
        ds = fs.namenode.dataset(name)
        datasets.append(
            {
                "name": ds.name,
                "files": [
                    {
                        "name": meta.name,
                        "chunks": [c.size for c in meta.chunks],
                    }
                    for meta in ds.files
                ],
            }
        )
    locations = {
        f"{cid.file}#{cid.index}": list(nodes)
        for cid, nodes in fs.layout_snapshot().items()
    }
    return {
        "format": FORMAT_VERSION,
        "kind": "layout_snapshot",
        "num_nodes": fs.num_nodes,
        "replication": fs.replication,
        "datasets": datasets,
        "locations": locations,
    }


def save_snapshot(fs: DistributedFileSystem, path: str | Path) -> Path:
    """Write the file system's layout snapshot to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(snapshot_to_dict(fs), indent=2))
    return path


def _parse_chunk_key(key: str) -> ChunkId:
    file, _, index = key.rpartition("#")
    if not file:
        raise ValueError(f"malformed chunk key {key!r}")
    return ChunkId(file, int(index))


def restore_snapshot(fs: DistributedFileSystem, data: dict) -> list[str]:
    """Load a snapshot into a fresh file system; returns dataset names.

    The target must have at least as many nodes as the snapshot used and
    must not already contain any of the snapshot's datasets.  Placement
    policy and RNG are bypassed: replicas land exactly where recorded.
    """
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot format {data.get('format')!r}")
    if data.get("kind") != "layout_snapshot":
        raise ValueError(f"not a layout snapshot: {data.get('kind')!r}")
    if fs.num_nodes < int(data["num_nodes"]):
        raise ValueError(
            f"snapshot needs {data['num_nodes']} nodes, target has {fs.num_nodes}"
        )
    locations = {
        _parse_chunk_key(key): tuple(int(n) for n in nodes)
        for key, nodes in data["locations"].items()
    }
    names = []
    for ds_doc in data["datasets"]:
        ds = Dataset(ds_doc["name"])
        for file_doc in ds_doc["files"]:
            chunks = tuple(
                Chunk(ChunkId(file_doc["name"], i), int(size))
                for i, size in enumerate(file_doc["chunks"])
            )
            ds.add_file(FileMeta(file_doc["name"], chunks))
        fs.namenode.register_dataset(ds, locations)
        for meta in ds.files:
            for chunk in meta.chunks:
                for node in locations[chunk.id]:
                    fs.datanodes[node].add_replica(chunk.id, chunk.size)
        names.append(ds.name)
    return names


def load_snapshot(fs: DistributedFileSystem, path: str | Path) -> list[str]:
    """Read a snapshot file and restore it into ``fs``."""
    return restore_snapshot(fs, json.loads(Path(path).read_text()))
