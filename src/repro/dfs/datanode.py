"""DataNode model: per-node chunk inventory and serve accounting.

A DataNode stores chunk replicas and counts what it serves.  The serve
counters implement the paper's "monitor to record the amount of data served
by each storage node" used for Figures 1(a), 8 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .chunk import ChunkId


@dataclass
class DataNode:
    """One storage node's replica inventory plus serve statistics."""

    node_id: int
    _chunks: dict[ChunkId, int] = field(default_factory=dict)  # chunk -> size
    bytes_served: int = 0
    requests_served: int = 0
    local_bytes_served: int = 0
    remote_bytes_served: int = 0

    def add_replica(self, chunk_id: ChunkId, size: int) -> None:
        if size <= 0:
            raise ValueError("replica size must be positive")
        if chunk_id in self._chunks:
            raise ValueError(f"node {self.node_id} already holds {chunk_id}")
        self._chunks[chunk_id] = size

    def drop_replica(self, chunk_id: ChunkId) -> None:
        if chunk_id not in self._chunks:
            raise KeyError(f"node {self.node_id} does not hold {chunk_id}")
        del self._chunks[chunk_id]

    def holds(self, chunk_id: ChunkId) -> bool:
        return chunk_id in self._chunks

    def replica_size(self, chunk_id: ChunkId) -> int:
        return self._chunks[chunk_id]

    @property
    def chunk_ids(self) -> list[ChunkId]:
        return list(self._chunks)

    @property
    def num_replicas(self) -> int:
        return len(self._chunks)

    @property
    def stored_bytes(self) -> int:
        return sum(self._chunks.values())

    def record_serve(self, chunk_id: ChunkId, *, local: bool) -> None:
        """Account one read request served from this node's disk."""
        size = self._chunks.get(chunk_id)
        if size is None:
            raise KeyError(f"node {self.node_id} asked to serve {chunk_id} it does not hold")
        self.bytes_served += size
        self.requests_served += 1
        if local:
            self.local_bytes_served += size
        else:
            self.remote_bytes_served += size

    def reset_counters(self) -> None:
        self.bytes_served = 0
        self.requests_served = 0
        self.local_bytes_served = 0
        self.remote_bytes_served = 0
