"""Chunk and dataset value types for the HDFS-like file system model.

HDFS splits every file into fixed-size *chunks* (blocks, 64 MB by default in
the paper's deployment) and replicates each chunk onto ``r`` DataNodes.  The
matching algorithms in :mod:`repro.core` operate on chunk granularity, so the
value types here are deliberately small and hashable.

Sizes are bytes throughout; the presentation layer converts to MB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..units import Bytes

#: Default HDFS chunk (block) size used by the paper: 64 MB.
DEFAULT_CHUNK_SIZE = 64 * 10**6

MB = 10**6


@dataclass(frozen=True, slots=True)
class ChunkId:
    """Globally unique identifier of one chunk: ``(file name, index)``.

    The hash is precomputed at construction: chunk ids key every NameNode
    and DataNode table, so the read hot path hashes each id several times
    per simulated read — paying the string hash once per identity keeps
    those probes at integer-compare cost.
    """

    file: str
    index: int
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.file, self.index)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.file}#{self.index}"


@dataclass(frozen=True, slots=True)
class Chunk:
    """One chunk of a file.

    Attributes
    ----------
    id:
        The chunk's identity.
    size:
        Chunk payload size in bytes.  All chunks but a file's last one have
        the file system's chunk size; the last may be smaller.
    """

    id: ChunkId
    size: Bytes

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"chunk size must be positive, got {self.size}")


@dataclass(frozen=True, slots=True)
class FileMeta:
    """Immutable file metadata: an ordered tuple of chunks."""

    name: str
    chunks: tuple[Chunk, ...]

    @property
    def size(self) -> Bytes:
        """Total file size in bytes."""
        return sum(c.size for c in self.chunks)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self.chunks)


def make_file(name: str, size: Bytes, chunk_size: Bytes = DEFAULT_CHUNK_SIZE) -> FileMeta:
    """Split a logical file of ``size`` bytes into chunk metadata.

    Mirrors HDFS block splitting: full-size chunks followed by a smaller tail
    chunk when ``size`` is not a multiple of ``chunk_size``.
    """
    if size <= 0:
        raise ValueError(f"file size must be positive, got {size}")
    if chunk_size <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    chunks = []
    offset = 0
    index = 0
    while offset < size:
        payload = min(chunk_size, size - offset)
        chunks.append(Chunk(ChunkId(name, index), payload))
        offset += payload
        index += 1
    return FileMeta(name, tuple(chunks))


@dataclass(slots=True)
class Dataset:
    """A named collection of files, e.g. one gene database or one VTK series.

    The paper's multi-data experiments draw each task's inputs from several
    datasets (human / mouse / chimpanzee genomes); the single-data experiments
    use one dataset whose chunk files are the tasks.
    """

    name: str
    files: list[FileMeta] = field(default_factory=list)
    # O(1) duplicate-name index; rebuilt lazily so callers who construct
    # Dataset(files=[...]) directly stay correct.
    _names: set[str] = field(default_factory=set, repr=False, compare=False)

    def add_file(self, meta: FileMeta) -> None:
        names = self._names
        if len(names) != len(self.files):
            names.clear()
            names.update(f.name for f in self.files)
        if meta.name in names:
            raise ValueError(f"duplicate file name {meta.name!r} in dataset {self.name!r}")
        self.files.append(meta)
        names.add(meta.name)

    @property
    def size(self) -> Bytes:
        return sum(f.size for f in self.files)

    @property
    def num_chunks(self) -> int:
        return sum(f.num_chunks for f in self.files)

    def iter_chunks(self) -> Iterator[Chunk]:
        for f in self.files:
            yield from f.chunks

    def chunk_ids(self) -> list[ChunkId]:
        return [c.id for c in self.iter_chunks()]


def uniform_dataset(
    name: str,
    num_chunks: int,
    chunk_size: Bytes = DEFAULT_CHUNK_SIZE,
) -> Dataset:
    """Build a dataset of ``num_chunks`` single-chunk files of equal size.

    This is the paper's benchmark shape: "a data set, which contains 128
    chunks, each around 64 MB" — each chunk file is one task.
    """
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    ds = Dataset(name)
    for i in range(num_chunks):
        ds.add_file(make_file(f"{name}/part-{i:05d}", chunk_size, chunk_size))
    return ds


def dataset_from_sizes(
    name: str,
    sizes: Iterable[int],
    chunk_size: Bytes = DEFAULT_CHUNK_SIZE,
) -> Dataset:
    """Build a dataset with one file per entry of ``sizes`` (bytes each)."""
    ds = Dataset(name)
    for i, size in enumerate(sizes):
        ds.add_file(make_file(f"{name}/part-{i:05d}", size, chunk_size))
    return ds
