"""Replica placement policies.

When a dataset is stored, the file system picks ``r`` distinct DataNodes for
every chunk.  The paper's analysis (§III) assumes the HDFS default it calls
"randomly distribute[d] … with several identical copies": each chunk lands on
``r`` nodes chosen uniformly without replacement.  We implement that policy
plus two richer ones:

* :class:`HdfsWriterLocalPlacement` — real HDFS semantics when the writer is
  a cluster node: first replica on the writer, second on a different rack,
  third on the second's rack.
* :class:`SkewedPlacement` — models the §IV-B observation that "node addition
  or removal could cause an unbalanced redistribution of data" by excluding
  late-joining nodes from placement and/or biasing choice.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from .chunk import Chunk, ChunkId, Dataset
from .cluster import ClusterSpec

#: HDFS default replication factor, used throughout the paper.
DEFAULT_REPLICATION = 3


class PlacementPolicy(ABC):
    """Strategy deciding which nodes hold each chunk's replicas."""

    @abstractmethod
    def place_chunk(
        self,
        chunk: Chunk,
        cluster: ClusterSpec,
        candidates: list[int],
        replication: int,
        rng: np.random.Generator,
        writer_node: int | None = None,
    ) -> tuple[int, ...]:
        """Return the node ids that will hold ``chunk``'s replicas.

        ``candidates`` is the set of active nodes; the result must be
        ``min(replication, len(candidates))`` distinct members of it.
        """

    def place_dataset(
        self,
        dataset: Dataset,
        cluster: ClusterSpec,
        candidates: list[int],
        replication: int,
        rng: np.random.Generator,
        writer_node: int | None = None,
    ) -> dict[ChunkId, tuple[int, ...]]:
        """Place every chunk of ``dataset``; returns chunk → replica nodes."""
        if replication <= 0:
            raise ValueError("replication must be positive")
        if not candidates:
            raise ValueError("no candidate nodes to place on")
        layout: dict[ChunkId, tuple[int, ...]] = {}
        for chunk in dataset.iter_chunks():
            nodes = self.place_chunk(chunk, cluster, candidates, replication, rng, writer_node)
            if len(set(nodes)) != len(nodes):
                raise RuntimeError(f"policy produced duplicate replicas for {chunk.id}")
            layout[chunk.id] = nodes
        return layout


class RandomPlacement(PlacementPolicy):
    """Uniform random placement: r distinct nodes per chunk.

    This is the model behind the paper's locality/balance analysis — the
    probability that a given node holds a given chunk is exactly ``r/m``.
    """

    def place_chunk(
        self,
        chunk: Chunk,
        cluster: ClusterSpec,
        candidates: list[int],
        replication: int,
        rng: np.random.Generator,
        writer_node: int | None = None,
    ) -> tuple[int, ...]:
        r = min(replication, len(candidates))
        picked = rng.choice(len(candidates), size=r, replace=False)
        return tuple(sorted(candidates[i] for i in picked))


class HdfsWriterLocalPlacement(PlacementPolicy):
    """HDFS default placement with a known writer.

    Replica 1 on the writer's node; replica 2 on a node in a different rack
    (random node if only one rack); replica 3 in the same rack as replica 2;
    further replicas random.  The paper's MPI writers produce exactly this
    layout when data is ingested from the cluster itself.
    """

    def place_chunk(
        self,
        chunk: Chunk,
        cluster: ClusterSpec,
        candidates: list[int],
        replication: int,
        rng: np.random.Generator,
        writer_node: int | None = None,
    ) -> tuple[int, ...]:
        cand = set(candidates)
        chosen: list[int] = []

        def pick(pool: list[int]) -> int | None:
            pool = [p for p in pool if p in cand and p not in chosen]
            if not pool:
                return None
            return pool[int(rng.integers(len(pool)))]

        if writer_node is not None and writer_node in cand:
            chosen.append(writer_node)
        else:
            first = pick(candidates)
            if first is not None:
                chosen.append(first)

        while len(chosen) < min(replication, len(cand)):
            if len(chosen) == 1 and cluster.num_racks > 1:
                other_rack = [
                    n for n in candidates if cluster.rack_of(n) != cluster.rack_of(chosen[0])
                ]
                nxt = pick(other_rack) or pick(candidates)
            elif len(chosen) == 2 and cluster.num_racks > 1:
                same_rack = [
                    n for n in candidates if cluster.rack_of(n) == cluster.rack_of(chosen[1])
                ]
                nxt = pick(same_rack) or pick(candidates)
            else:
                nxt = pick(candidates)
            if nxt is None:
                break
            chosen.append(nxt)
        return tuple(chosen)


@dataclass
class SkewedPlacement(PlacementPolicy):
    """Random placement with injected imbalance.

    ``excluded_fraction`` of the candidate nodes (the "recently added" ones)
    receive no replicas at all — as after a node addition before any
    rebalance — and the remainder optionally receive geometrically biased
    load via ``bias`` (> 0 skews toward low node ids).
    """

    excluded_fraction: float = 0.25
    bias: float = 0.0
    _excluded_cache: dict[tuple[int, ...], set[int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.excluded_fraction < 1:
            raise ValueError("excluded_fraction must be in [0, 1)")
        if self.bias < 0:
            raise ValueError("bias must be non-negative")

    def _eligible(self, candidates: list[int]) -> list[int]:
        key = tuple(candidates)
        if key not in self._excluded_cache:
            k = int(len(candidates) * self.excluded_fraction)
            # Deterministically exclude the highest-numbered nodes: these are
            # the "new" nodes in a grow-the-cluster scenario.
            self._excluded_cache[key] = set(sorted(candidates)[len(candidates) - k :])
        excluded = self._excluded_cache[key]
        eligible = [c for c in candidates if c not in excluded]
        return eligible if eligible else list(candidates)

    def place_chunk(
        self,
        chunk: Chunk,
        cluster: ClusterSpec,
        candidates: list[int],
        replication: int,
        rng: np.random.Generator,
        writer_node: int | None = None,
    ) -> tuple[int, ...]:
        eligible = self._eligible(candidates)
        r = min(replication, len(eligible))
        if self.bias > 0:
            ranks = np.arange(len(eligible), dtype=float)
            weights = np.exp(-self.bias * ranks / max(len(eligible) - 1, 1))
            weights /= weights.sum()
            picked = rng.choice(len(eligible), size=r, replace=False, p=weights)
        else:
            picked = rng.choice(len(eligible), size=r, replace=False)
        return tuple(sorted(eligible[i] for i in picked))
