"""Replica-selection policies for the read path.

The paper describes HDFS's client read policy: "a client process will first
attempt to read the data from the disk that it is running on … If the
required data is not on the local disk, the process will then read from
another node that contains the required data", with the remote node "chosen
at random".  Local-first is applied by the file system facade; the policies
here decide which replica serves when no local replica exists.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter

import numpy as np

from .chunk import ChunkId


class ReplicaChoicePolicy(ABC):
    """Chooses the serving node for a remote read."""

    @abstractmethod
    def choose(
        self,
        chunk_id: ChunkId,
        replicas: tuple[int, ...],
        reader_node: int,
        rng: np.random.Generator,
    ) -> int:
        """Pick one node id from ``replicas`` to serve ``chunk_id``."""

    def reset(self) -> None:
        """Clear any internal load state (between experiment runs)."""


class RandomRemote(ReplicaChoicePolicy):
    """HDFS default model: a uniformly random replica holder (paper §III-B)."""

    def choose(
        self,
        chunk_id: ChunkId,
        replicas: tuple[int, ...],
        reader_node: int,
        rng: np.random.Generator,
    ) -> int:
        if not replicas:
            raise ValueError(f"no replicas for {chunk_id}")
        return replicas[int(rng.integers(len(replicas)))]


class FirstListed(ReplicaChoicePolicy):
    """Deterministic: the first replica in the NameNode's list.

    A worst-case policy: every reader of a chunk hits the same node.  Useful
    as an adversarial baseline in balance experiments.
    """

    def choose(
        self,
        chunk_id: ChunkId,
        replicas: tuple[int, ...],
        reader_node: int,
        rng: np.random.Generator,
    ) -> int:
        if not replicas:
            raise ValueError(f"no replicas for {chunk_id}")
        return replicas[0]


class LeastLoaded(ReplicaChoicePolicy):
    """Pick the replica holder that has served the fewest requests so far.

    Not what stock HDFS does (the paper's point); included as an
    infrastructure-side alternative for ablations.  Ties break by node id.
    """

    def __init__(self) -> None:
        self._served: Counter[int] = Counter()

    def choose(
        self,
        chunk_id: ChunkId,
        replicas: tuple[int, ...],
        reader_node: int,
        rng: np.random.Generator,
    ) -> int:
        if not replicas:
            raise ValueError(f"no replicas for {chunk_id}")
        node = min(replicas, key=lambda n: (self._served[n], n))
        self._served[node] += 1
        return node

    def reset(self) -> None:
        self._served.clear()
