"""NameNode model: the namespace and block-location metadata service.

Opass's only requirement of the file system is the ability to "retrieve the
data layout information from the underlying distributed file system" —
the ``getFileBlockLocations`` call exposed through libhdfs.  The NameNode
here owns the file → chunks → replica-nodes mapping and answers exactly
those queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .chunk import Chunk, ChunkId, Dataset, FileMeta

_TOKEN_MASK = (1 << 64) - 1


@dataclass
class NameNode:
    """Namespace plus chunk→replica-location index."""

    _files: dict[str, FileMeta] = field(default_factory=dict)
    _locations: dict[ChunkId, tuple[int, ...]] = field(default_factory=dict)
    # Direct ChunkId -> Chunk index so the read path's per-chunk metadata
    # query is one dict probe instead of a file-stat plus a tuple walk.
    _chunk_index: dict[ChunkId, Chunk] = field(default_factory=dict)
    _datasets: dict[str, Dataset] = field(default_factory=dict)
    # Running Σ hash((cid, nodes)) over _locations, mod 2^64.  Every
    # mutator below keeps it in sync, so layout_token is O(1) instead of
    # a full-map rescan.  The sum commutes, so mutation order is
    # irrelevant — the token matches repro.dfs.snapshot.layout_token
    # recomputed from scratch at all times.
    _token_sum: int = 0

    # -- namespace ---------------------------------------------------------

    def register_file(self, meta: FileMeta, locations: dict[ChunkId, tuple[int, ...]]) -> None:
        """Add a file and the replica locations of each of its chunks."""
        if meta.name in self._files:
            raise ValueError(f"file {meta.name!r} already exists")
        for chunk in meta.chunks:
            if chunk.id not in locations:
                raise ValueError(f"missing locations for {chunk.id}")
            nodes = locations[chunk.id]
            if not nodes:
                raise ValueError(f"chunk {chunk.id} has no replicas")
            if len(set(nodes)) != len(nodes):
                raise ValueError(f"chunk {chunk.id} has duplicate replica nodes")
        self._files[meta.name] = meta
        for chunk in meta.chunks:
            nodes = tuple(locations[chunk.id])
            self._chunk_index[chunk.id] = chunk
            self._locations[chunk.id] = nodes
            self._token_sum = (self._token_sum + hash((chunk.id, nodes))) & _TOKEN_MASK

    def register_dataset(self, dataset: Dataset, layout: dict[ChunkId, tuple[int, ...]]) -> None:
        if dataset.name in self._datasets:
            raise ValueError(f"dataset {dataset.name!r} already exists")
        for meta in dataset.files:
            self.register_file(meta, layout)
        self._datasets[dataset.name] = dataset

    def exists(self, name: str) -> bool:
        return name in self._files

    def stat(self, name: str) -> FileMeta:
        if name not in self._files:
            raise FileNotFoundError(name)
        return self._files[name]

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def dataset(self, name: str) -> Dataset:
        if name not in self._datasets:
            raise KeyError(f"no dataset {name!r}")
        return self._datasets[name]

    def list_datasets(self) -> list[str]:
        return sorted(self._datasets)

    # -- block locations (the libhdfs surface Opass consumes) ---------------

    def get_block_locations(self, name: str) -> list[tuple[Chunk, tuple[int, ...]]]:
        """Per-chunk replica locations for one file, in chunk order."""
        meta = self.stat(name)
        return [(chunk, self._locations[chunk.id]) for chunk in meta.chunks]

    def locations_of(self, chunk_id: ChunkId) -> tuple[int, ...]:
        nodes = self._locations.get(chunk_id)
        if nodes is None:
            raise KeyError(f"unknown chunk {chunk_id}")
        return nodes

    def read_entry(self, chunk_id: ChunkId) -> tuple[Chunk, tuple[int, ...]]:
        """``(chunk, replica locations)`` in one call.

        The read hot path (:meth:`~repro.dfs.filesystem.
        DistributedFileSystem.resolve_read`) needs both; fetching them
        together hashes the chunk id once per table instead of paying
        two dispatches.
        """
        chunk = self._chunk_index.get(chunk_id)
        nodes = self._locations.get(chunk_id)
        if chunk is None or nodes is None:
            # Fall back to the slow paths for their error taxonomy.
            return self.chunk(chunk_id), self.locations_of(chunk_id)
        return chunk, nodes

    def chunk(self, chunk_id: ChunkId) -> Chunk:
        found = self._chunk_index.get(chunk_id)
        if found is not None:
            return found
        # Miss: re-derive through the namespace so the error taxonomy is
        # unchanged — unknown file raises FileNotFoundError (via stat),
        # known file with an out-of-range index raises KeyError.
        meta = self.stat(chunk_id.file)
        try:
            return meta.chunks[chunk_id.index]
        except IndexError:
            raise KeyError(f"unknown chunk {chunk_id}") from None

    def layout_snapshot(self) -> dict[ChunkId, tuple[int, ...]]:
        """A copy of the full chunk→nodes map (what Opass's graph builder reads)."""
        return dict(self._locations)

    @property
    def layout_token(self) -> int:
        """O(1) content token for the current chunk→nodes map.

        Equal to :func:`repro.dfs.snapshot.layout_token` applied to
        :meth:`layout_snapshot`, but maintained incrementally by the
        mutators instead of rescanning the map.  In-memory use only
        (``hash`` is salted per interpreter).
        """
        return (len(self._locations) + self._token_sum) & _TOKEN_MASK

    def _token_swap(
        self, cid: ChunkId, old: tuple[int, ...], new: tuple[int, ...]
    ) -> None:
        self._token_sum = (
            self._token_sum - hash((cid, old)) + hash((cid, new))
        ) & _TOKEN_MASK

    # -- maintenance ---------------------------------------------------------

    def drop_node_replicas(self, node_id: int) -> list[ChunkId]:
        """Remove ``node_id`` from every location list (node loss).

        Returns chunks that lost a replica.  Chunks whose last replica lived
        on the node are left with an empty location tuple; callers decide
        whether that is data loss or triggers re-replication.
        """
        touched = []
        for cid, nodes in self._locations.items():
            if node_id in nodes:
                remaining = tuple(n for n in nodes if n != node_id)
                self._locations[cid] = remaining
                self._token_swap(cid, nodes, remaining)
                touched.append(cid)
        return touched

    def add_replica(self, chunk_id: ChunkId, node_id: int) -> None:
        nodes = self.locations_of(chunk_id)
        if node_id in nodes:
            raise ValueError(f"{chunk_id} already on node {node_id}")
        grown = tuple(sorted((*nodes, node_id)))
        self._locations[chunk_id] = grown
        self._token_swap(chunk_id, nodes, grown)

    def remove_replica(self, chunk_id: ChunkId, node_id: int) -> None:
        """Drop one replica location (balancer delete-after-copy)."""
        nodes = self.locations_of(chunk_id)
        if node_id not in nodes:
            raise ValueError(f"{chunk_id} has no replica on node {node_id}")
        if len(nodes) == 1:
            raise ValueError(f"refusing to drop the last replica of {chunk_id}")
        shrunk = tuple(n for n in nodes if n != node_id)
        self._locations[chunk_id] = shrunk
        self._token_swap(chunk_id, nodes, shrunk)
