"""The distributed file system facade — the libhdfs-like client surface.

Ties together the cluster, NameNode, DataNodes, a placement policy and a
replica-selection policy.  Application code (drivers, benchmarks) talks only
to this class:

* ``put_dataset`` — ingest a dataset (places replicas, registers metadata);
* ``get_block_locations`` / ``layout_snapshot`` — what Opass's graph builder
  reads;
* ``resolve_read`` — given (reader node, chunk), decide the serving replica
  using HDFS's local-first / configurable-remote policy and update serve
  counters.  The simulator uses the resolved :class:`ReadPlan` to build the
  actual timed transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chunk import Chunk, ChunkId, Dataset
from .cluster import Cluster, ClusterSpec
from .datanode import DataNode
from .namenode import NameNode
from .placement import DEFAULT_REPLICATION, PlacementPolicy, RandomPlacement
from .policies import RandomRemote, ReplicaChoicePolicy


# Not frozen: one plan is built per chunk read on the simulator's hot
# path, and a frozen dataclass pays ~4x on construction (every field
# goes through object.__setattr__).  Treat instances as immutable.
@dataclass(slots=True)
class ReadPlan:
    """A resolved read: which node serves a chunk to which reader."""

    chunk: Chunk
    reader_node: int
    server_node: int

    @property
    def is_local(self) -> bool:
        return self.reader_node == self.server_node


class DistributedFileSystem:
    """An HDFS-like file system over a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster | ClusterSpec,
        *,
        replication: int = DEFAULT_REPLICATION,
        placement: PlacementPolicy | None = None,
        replica_choice: ReplicaChoicePolicy | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        if isinstance(cluster, ClusterSpec):
            cluster = Cluster(cluster)
        if replication <= 0:
            raise ValueError("replication must be positive")
        self.cluster = cluster
        self.replication = replication
        self.placement = placement if placement is not None else RandomPlacement()
        self.replica_choice = replica_choice if replica_choice is not None else RandomRemote()
        self.rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self.namenode = NameNode()
        self.datanodes = {n.node_id: DataNode(n.node_id) for n in cluster.spec.nodes}

    # -- convenience properties ---------------------------------------------

    @property
    def spec(self) -> ClusterSpec:
        return self.cluster.spec

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    # -- write path -----------------------------------------------------------

    def put_dataset(self, dataset: Dataset, *, writer_node: int | None = None) -> None:
        """Store a dataset: place replicas and register metadata."""
        layout = self.placement.place_dataset(
            dataset,
            self.spec,
            self.cluster.active_nodes,
            self.replication,
            self.rng,
            writer_node,
        )
        self.namenode.register_dataset(dataset, layout)
        size_of = {c.id: c.size for c in dataset.iter_chunks()}
        for cid, nodes in layout.items():
            for node in nodes:
                self.datanodes[node].add_replica(cid, size_of[cid])

    # -- metadata (the Opass-facing surface) ----------------------------------

    def get_block_locations(self, file_name: str) -> list[tuple[Chunk, tuple[int, ...]]]:
        return self.namenode.get_block_locations(file_name)

    def layout_snapshot(self) -> dict[ChunkId, tuple[int, ...]]:
        return self.namenode.layout_snapshot()

    @property
    def layout_token(self) -> int:
        """O(1) content token for the current layout (see NameNode)."""
        return self.namenode.layout_token

    def dataset(self, name: str) -> Dataset:
        return self.namenode.dataset(name)

    def chunk(self, chunk_id: ChunkId) -> Chunk:
        return self.namenode.chunk(chunk_id)

    # -- read path --------------------------------------------------------------

    def resolve_read(self, chunk_id: ChunkId, reader_node: int) -> ReadPlan:
        """Apply HDFS's read policy: local replica if present, else remote.

        Updates the serving DataNode's counters; the caller is responsible
        for actually timing the transfer (see :mod:`repro.simulate`).
        """
        cluster = self.cluster
        spec = cluster.spec
        if not 0 <= reader_node < spec.num_nodes:
            spec.node(reader_node)  # raise the canonical error
        chunk, replicas = self.namenode.read_entry(chunk_id)
        if cluster.num_active == spec.num_nodes:
            # Healthy cluster: every replica is live; skip the filter.
            live = replicas
        else:
            live = tuple(n for n in replicas if cluster.is_active(n))
        if not live:
            raise RuntimeError(f"no live replica for {chunk_id}")
        if reader_node in live:
            server = reader_node
        else:
            server = self.replica_choice.choose(chunk_id, live, reader_node, self.rng)
        plan = ReadPlan(chunk=chunk, reader_node=reader_node, server_node=server)
        self.datanodes[server].record_serve(chunk_id, local=plan.is_local)
        return plan

    # -- statistics ----------------------------------------------------------------

    def bytes_served_per_node(self) -> dict[int, int]:
        return {nid: dn.bytes_served for nid, dn in self.datanodes.items()}

    def requests_served_per_node(self) -> dict[int, int]:
        return {nid: dn.requests_served for nid, dn in self.datanodes.items()}

    def reset_counters(self) -> None:
        for dn in self.datanodes.values():
            dn.reset_counters()
        self.replica_choice.reset()

    def replica_count_per_node(self) -> dict[int, int]:
        return {nid: dn.num_replicas for nid, dn in self.datanodes.items()}
