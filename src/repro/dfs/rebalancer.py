"""HDFS balancer model: replica migration toward even disk utilisation.

Opass deliberately leaves placement alone ("Opass does not modify the
design of HDFS"); the infrastructure-side alternative is HDFS's balancer,
which iteratively moves replicas from over-utilised to under-utilised
DataNodes until every node is within a threshold of the cluster mean.
This model lets the ablations contrast the two approaches: the balancer
*moves data* (paying transfer cost, counted here) to fix storage skew,
while Opass fixes *access* without moving anything — and a balanced layout
alone still leaves reads remote.

Semantics follow the real balancer: utilisation = stored bytes relative to
the cluster average; a move is legal only if the target does not already
hold a replica of the chunk; iterate until convergence or ``max_passes``.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from .chunk import ChunkId
from .filesystem import DistributedFileSystem

logger = logging.getLogger(__name__)


@dataclass
class RebalanceReport:
    """What one balancer run did."""

    moves: list[tuple[ChunkId, int, int]] = field(default_factory=list)
    bytes_moved: int = 0
    passes: int = 0
    converged: bool = False

    @property
    def num_moves(self) -> int:
        return len(self.moves)


class Rebalancer:
    """Threshold-based replica migration over a live file system."""

    def __init__(self, fs: DistributedFileSystem, *, threshold: float = 0.10) -> None:
        """``threshold``: tolerated relative deviation from mean stored bytes."""
        if not 0 < threshold < 1:
            raise ValueError("threshold must be in (0, 1)")
        self.fs = fs
        self.threshold = threshold

    # -- introspection --------------------------------------------------------

    def stored_bytes(self) -> dict[int, int]:
        return {
            nid: dn.stored_bytes
            for nid, dn in self.fs.datanodes.items()
            if self.fs.cluster.is_active(nid)
        }

    def utilisation_spread(self) -> float:
        """(max - min) stored bytes relative to the mean (0 = flat)."""
        stored = list(self.stored_bytes().values())
        mean = float(np.mean(stored)) if stored else 0.0
        if mean == 0:
            return 0.0
        return (max(stored) - min(stored)) / mean

    def is_balanced(self) -> bool:
        stored = self.stored_bytes()
        mean = float(np.mean(list(stored.values())))
        if mean == 0:
            return True
        lo, hi = mean * (1 - self.threshold), mean * (1 + self.threshold)
        return all(lo <= b <= hi for b in stored.values())

    # -- migration -----------------------------------------------------------------

    def _move_replica(self, chunk_id: ChunkId, src: int, dst: int) -> None:
        """Delete-after-copy, as the real balancer does."""
        size = self.fs.datanodes[src].replica_size(chunk_id)
        self.fs.datanodes[dst].add_replica(chunk_id, size)
        self.fs.namenode.add_replica(chunk_id, dst)
        self.fs.datanodes[src].drop_replica(chunk_id)
        self.fs.namenode.remove_replica(chunk_id, src)

    def run(self, *, max_passes: int = 50) -> RebalanceReport:
        """Migrate replicas until balanced or out of passes."""
        if max_passes <= 0:
            raise ValueError("max_passes must be positive")
        report = RebalanceReport()
        for _ in range(max_passes):
            report.passes += 1
            stored = self.stored_bytes()
            mean = float(np.mean(list(stored.values())))
            if mean == 0 or self.is_balanced():
                report.converged = True
                break
            over = sorted(
                (n for n, b in stored.items() if b > mean * (1 + self.threshold)),
                key=lambda n: -stored[n],
            )
            under = sorted(
                (n for n, b in stored.items() if b < mean * (1 - self.threshold)),
                key=lambda n: stored[n],
            )
            if not over or not under:
                report.converged = True
                break
            moved_any = False
            for src in over:
                for dst in under:
                    if stored[src] <= mean * (1 + self.threshold):
                        break
                    if stored[dst] >= mean:
                        continue
                    chunk = self._pick_movable(src, dst)
                    if chunk is None:
                        continue
                    size = self.fs.datanodes[src].replica_size(chunk)
                    self._move_replica(chunk, src, dst)
                    stored[src] -= size
                    stored[dst] += size
                    report.moves.append((chunk, src, dst))
                    report.bytes_moved += size
                    moved_any = True
            if not moved_any:
                break  # nothing legal left to move
        else:
            report.converged = self.is_balanced()
        if not report.converged:
            report.converged = self.is_balanced()
        logger.info(
            "rebalance: %d moves, %.1f MB, %d passes, converged=%s",
            report.num_moves, report.bytes_moved / 1e6, report.passes,
            report.converged,
        )
        return report

    def _pick_movable(self, src: int, dst: int) -> ChunkId | None:
        """A replica on ``src`` whose chunk is absent from ``dst``."""
        for cid in self.fs.datanodes[src].chunk_ids:
            if not self.fs.datanodes[dst].holds(cid):
                return cid
        return None
