"""HDFS-like distributed file system substrate.

Models the pieces of HDFS that the Opass paper depends on: chunked files,
r-way replica placement, the NameNode block-location metadata service,
DataNode serve accounting, and the local-first/random-remote read policy.
"""

from .chunk import (
    DEFAULT_CHUNK_SIZE,
    MB,
    Chunk,
    ChunkId,
    Dataset,
    FileMeta,
    dataset_from_sizes,
    make_file,
    uniform_dataset,
)
from .cluster import Cluster, ClusterSpec, NodeSpec
from .datanode import DataNode
from .filesystem import DistributedFileSystem, ReadPlan
from .namenode import NameNode
from .placement import (
    DEFAULT_REPLICATION,
    HdfsWriterLocalPlacement,
    PlacementPolicy,
    RandomPlacement,
    SkewedPlacement,
)
from .policies import FirstListed, LeastLoaded, RandomRemote, ReplicaChoicePolicy
from .rebalancer import RebalanceReport, Rebalancer
from .reconstruction import ReconstructionReport, reconstruct_for_tasks
from .snapshot import load_snapshot, restore_snapshot, save_snapshot, snapshot_to_dict

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_REPLICATION",
    "MB",
    "Chunk",
    "ChunkId",
    "Cluster",
    "ClusterSpec",
    "DataNode",
    "Dataset",
    "DistributedFileSystem",
    "FileMeta",
    "FirstListed",
    "HdfsWriterLocalPlacement",
    "LeastLoaded",
    "NameNode",
    "NodeSpec",
    "PlacementPolicy",
    "RandomPlacement",
    "RandomRemote",
    "RebalanceReport",
    "Rebalancer",
    "ReconstructionReport",
    "ReadPlan",
    "ReplicaChoicePolicy",
    "SkewedPlacement",
    "dataset_from_sizes",
    "load_snapshot",
    "make_file",
    "reconstruct_for_tasks",
    "restore_snapshot",
    "save_snapshot",
    "snapshot_to_dict",
    "uniform_dataset",
]
