"""Cluster model: nodes, racks, and per-node hardware characteristics.

The paper's testbed is PRObE Marmot — up to 128 nodes, each with one SATA
disk and Gigabit Ethernet, all on one switch.  We model each node with a
disk bandwidth and a full-duplex NIC (separate ingress/egress capacity);
racks exist for the rack-aware placement policy even though Marmot is
single-switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..units import BytesPerSec, Seconds

MB = 10**6

#: Effective sequential bandwidth of one 2 TB SATA disk (bytes/s).  64 MB at
#: this rate takes ~0.9 s, matching the paper's with-Opass average I/O time.
DEFAULT_DISK_BW = 70 * MB

#: Effective Gigabit Ethernet throughput (bytes/s), ~93% of line rate.
DEFAULT_NIC_BW = 117 * MB

#: Average positioning (seek + rotational) latency charged per read (s).
DEFAULT_SEEK_LATENCY = 0.010

#: Extra fixed latency for a remote read (connection + protocol RTTs) (s).
DEFAULT_REMOTE_LATENCY = 0.040

#: Per-stream throughput ceiling of one remote HDFS read (bytes/s).  A 2015
#: era libhdfs remote read is one TCP stream through the DataNode transfer
#: protocol; protocol overhead and windowing keep it well under both disk
#: and NIC line rate — the paper observes ~2 s for an uncontended 64 MB
#: remote read (≈32 MB/s).
DEFAULT_REMOTE_STREAM_BW = 32 * MB


#: Seek-thrashing factor for concurrent streams on one SATA disk: with k
#: readers the disk delivers bw / (1 + penalty·(k−1)) in aggregate.
DEFAULT_DISK_CONCURRENCY_PENALTY = 0.25


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Static description of one cluster node."""

    node_id: int
    rack: int = 0
    disk_bw: BytesPerSec = DEFAULT_DISK_BW
    nic_bw: BytesPerSec = DEFAULT_NIC_BW
    disk_concurrency_penalty: float = DEFAULT_DISK_CONCURRENCY_PENALTY

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.disk_bw <= 0 or self.nic_bw <= 0:
            raise ValueError("bandwidths must be positive")
        if self.disk_concurrency_penalty < 0:
            raise ValueError("disk_concurrency_penalty must be non-negative")


@dataclass(frozen=True)
class ClusterSpec:
    """Immutable description of a cluster.

    Use :meth:`homogeneous` for the common Marmot-like case.
    """

    nodes: tuple[NodeSpec, ...]
    seek_latency: Seconds = DEFAULT_SEEK_LATENCY
    remote_latency: Seconds = DEFAULT_REMOTE_LATENCY
    remote_stream_bw: BytesPerSec = DEFAULT_REMOTE_STREAM_BW
    #: Per-rack uplink capacity (bytes/s) shared by all cross-rack traffic
    #: in each direction.  None models a non-blocking fabric (Marmot's
    #: single switch); a finite value models an oversubscribed datacenter
    #: network where cross-rack reads contend on the top-of-rack links.
    rack_uplink_bw: BytesPerSec | None = None

    def __post_init__(self) -> None:
        if self.remote_stream_bw <= 0:
            raise ValueError("remote_stream_bw must be positive")
        if self.rack_uplink_bw is not None and self.rack_uplink_bw <= 0:
            raise ValueError("rack_uplink_bw must be positive when set")
        ids = [n.node_id for n in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in cluster spec")
        if ids != list(range(len(ids))):
            raise ValueError("node ids must be 0..m-1 in order")
        if not self.nodes:
            raise ValueError("cluster must have at least one node")

    @classmethod
    def homogeneous(
        cls,
        num_nodes: int,
        *,
        disk_bw: BytesPerSec = DEFAULT_DISK_BW,
        nic_bw: BytesPerSec = DEFAULT_NIC_BW,
        disk_concurrency_penalty: float = DEFAULT_DISK_CONCURRENCY_PENALTY,
        nodes_per_rack: int | None = None,
        seek_latency: Seconds = DEFAULT_SEEK_LATENCY,
        remote_latency: Seconds = DEFAULT_REMOTE_LATENCY,
        remote_stream_bw: BytesPerSec = DEFAULT_REMOTE_STREAM_BW,
        rack_uplink_bw: BytesPerSec | None = None,
    ) -> "ClusterSpec":
        """A cluster of identical nodes, optionally grouped into racks."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if nodes_per_rack is not None and nodes_per_rack <= 0:
            raise ValueError("nodes_per_rack must be positive")
        nodes = tuple(
            NodeSpec(
                node_id=i,
                rack=0 if nodes_per_rack is None else i // nodes_per_rack,
                disk_bw=disk_bw,
                nic_bw=nic_bw,
                disk_concurrency_penalty=disk_concurrency_penalty,
            )
            for i in range(num_nodes)
        )
        return cls(
            nodes=nodes,
            seek_latency=seek_latency,
            remote_latency=remote_latency,
            remote_stream_bw=remote_stream_bw,
            rack_uplink_bw=rack_uplink_bw,
        )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_racks(self) -> int:
        return len({n.rack for n in self.nodes})

    def node(self, node_id: int) -> NodeSpec:
        if not 0 <= node_id < len(self.nodes):
            raise KeyError(f"no node {node_id} in {len(self.nodes)}-node cluster")
        return self.nodes[node_id]

    def rack_of(self, node_id: int) -> int:
        return self.node(node_id).rack

    def nodes_in_rack(self, rack: int) -> list[int]:
        return [n.node_id for n in self.nodes if n.rack == rack]

    def __iter__(self) -> Iterator[NodeSpec]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class Cluster:
    """A live cluster: a spec plus mutable membership (decommissioning).

    Node addition/removal is how the paper motivates unbalanced layouts
    (§IV-B); :class:`repro.dfs.placement.SkewedPlacement` uses the member
    list to restrict where new replicas may land.
    """

    spec: ClusterSpec
    _active: set[int] = field(init=False)

    def __post_init__(self) -> None:
        self._active = {n.node_id for n in self.spec.nodes}

    @property
    def active_nodes(self) -> list[int]:
        return sorted(self._active)

    @property
    def num_active(self) -> int:
        return len(self._active)

    def is_active(self, node_id: int) -> bool:
        self.spec.node(node_id)  # validate id
        return node_id in self._active

    def decommission(self, node_id: int) -> None:
        """Remove a node from the active set (its replicas become stale)."""
        self.spec.node(node_id)
        if node_id not in self._active:
            raise ValueError(f"node {node_id} already decommissioned")
        if len(self._active) == 1:
            raise ValueError("cannot decommission the last active node")
        self._active.remove(node_id)

    def recommission(self, node_id: int) -> None:
        """Return a node to the active set (it starts with no chunks)."""
        self.spec.node(node_id)
        self._active.add(node_id)
