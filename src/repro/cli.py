"""Command-line interface: ``opass <command>``.

Runs the paper's experiments from a terminal without writing code:

* ``opass analyze`` — §III closed-form locality/balance numbers;
* ``opass single`` — the §V-A1 equal-assignment comparison;
* ``opass multi``  — the §V-A2 multi-input comparison;
* ``opass dynamic`` — the §V-A3 master/worker comparison;
* ``opass paraview`` — the §V-B ParaView pipeline comparison;
* ``opass figure <id>`` — run one paper figure (fig1..fig12) by id;
* ``opass sweep`` — Figure 7/8's cluster-size sweep;
* ``opass export`` — run the single-data comparison and write CSV/JSON;
* ``opass report`` — regenerate the full markdown reproduction report;
* ``opass validate`` — the model-vs-simulation consistency grid;
* ``opass hotspot`` — hottest-node extreme-value prediction;
* ``opass ingest`` — timed HDFS write-pipeline ingestion.

All experiments print paper-style avg/max/min tables.  See ``benchmarks/``
for the full figure-by-figure reproduction harness.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import figure3_series, section3b_summary
from .apps import MpiBlastRun, MultiInputComparison, ParaViewMultiBlockReader
from .core import ProcessPlacement
from .dfs import ClusterSpec, DistributedFileSystem
from .parallel import run_opass_single, run_rank_interval
from .viz import format_series, format_table
from .workloads import (
    gene_database,
    multi_input_datasets,
    paraview_multiblock_series,
    single_data_workload,
)


def _fresh_cluster(nodes: int, seed: int) -> tuple[DistributedFileSystem, ProcessPlacement]:
    spec = ClusterSpec.homogeneous(nodes)
    fs = DistributedFileSystem(spec, seed=seed)
    return fs, ProcessPlacement.one_per_node(nodes)


def cmd_analyze(args: argparse.Namespace) -> int:
    rows = []
    for row in figure3_series():
        rows.append((row.num_nodes, f"{row.prob_more_than_5 * 100:.2f}%"))
    print(format_table(["cluster size m", "P(X > 5)"], rows,
                       title="§III-A: probability of reading >5 chunks locally (n=512, r=3)"))
    s = section3b_summary()
    print()
    print(format_table(
        ["metric", "value"],
        [
            ("expected chunks served per node", f"{s.expected_served:.2f}"),
            ("E[nodes serving <=1 chunk] (x m)", f"{s.nodes_at_most_1:.1f}"),
            ("E[nodes serving >8 chunks] (x m)", f"{s.nodes_more_than_8:.1f}"),
            ("paper's multiplier (x n), <=1", f"{s.paper_multiplier_at_most_1:.1f}"),
            ("paper's multiplier (x n), >8", f"{s.paper_multiplier_more_than_8:.1f}"),
        ],
        title="§III-B: imbalance expectations (n=512, r=3, m=128)",
    ))
    return 0


def cmd_single(args: argparse.Namespace) -> int:
    fs, placement = _fresh_cluster(args.nodes, args.seed)
    data = single_data_workload(args.nodes, args.chunks_per_process)
    fs.put_dataset(data)
    from .core import tasks_from_dataset

    tasks = tasks_from_dataset(data)
    base = run_rank_interval(fs, placement, tasks, seed=args.seed)
    fs.reset_counters()
    opass = run_opass_single(fs, placement, tasks, seed=args.seed, opass_seed=args.seed)
    rows = []
    for name, outcome in [("w/o Opass", base), ("with Opass", opass)]:
        s = outcome.result.io_stats()
        rows.append(
            (name, s["avg"], s["max"], s["min"],
             f"{outcome.result.locality_fraction * 100:.0f}%",
             outcome.result.makespan)
        )
    print(format_table(
        ["method", "avg io (s)", "max io (s)", "min io (s)", "local reads", "makespan (s)"],
        rows,
        title=f"Parallel single-data access, {args.nodes} nodes x {args.chunks_per_process} chunks/process",
    ))
    return 0


def cmd_multi(args: argparse.Namespace) -> int:
    fs, placement = _fresh_cluster(args.nodes, args.seed)
    datasets = multi_input_datasets(args.tasks)
    for ds in datasets:
        fs.put_dataset(ds)
    rows = []
    for name, use in [("w/o Opass", False), ("with Opass", True)]:
        fs.reset_counters()
        out = MultiInputComparison(fs, placement, datasets, use_opass=use).execute(
            seed=args.seed
        )
        s = out.result.io_stats()
        rows.append((name, s["avg"], s["max"], s["min"],
                     f"{out.result.locality_fraction * 100:.0f}%", out.result.makespan))
    print(format_table(
        ["method", "avg io (s)", "max io (s)", "min io (s)", "local bytes", "makespan (s)"],
        rows,
        title=f"Parallel multi-data access, {args.nodes} nodes, {args.tasks} tasks (30+20+10 MB inputs)",
    ))
    return 0


def cmd_dynamic(args: argparse.Namespace) -> int:
    fs, placement = _fresh_cluster(args.nodes, args.seed)
    db = gene_database(args.tasks)
    fs.put_dataset(db)
    rows = []
    for name, use in [("default dynamic", False), ("Opass dynamic", True)]:
        fs.reset_counters()
        out = MpiBlastRun(fs, placement, db, use_opass=use).execute(seed=args.seed)
        s = out.result.io_stats()
        rows.append((name, s["avg"], s["max"], s["min"],
                     f"{out.result.locality_fraction * 100:.0f}%", out.result.makespan))
    print(format_table(
        ["method", "avg io (s)", "max io (s)", "min io (s)", "local reads", "makespan (s)"],
        rows,
        title=f"Dynamic (master/worker) access, {args.nodes} nodes, {args.tasks} fragments",
    ))
    return 0


def cmd_paraview(args: argparse.Namespace) -> int:
    fs, placement = _fresh_cluster(args.nodes, args.seed)
    series = paraview_multiblock_series(args.datasets)
    fs.put_dataset(series)
    rows = []
    traces = []
    for name, use in [("w/o Opass", False), ("with Opass", True)]:
        fs.reset_counters()
        result = ParaViewMultiBlockReader(
            fs, placement, series, use_opass=use
        ).render(seed=args.seed)
        rows.append((name, result.avg_call_time, result.std_call_time,
                     result.min_call_time, result.max_call_time,
                     result.total_execution_time))
        traces.append((name, result.reader_call_times))
    print(format_table(
        ["method", "avg call (s)", "std", "min", "max", "total run (s)"],
        rows,
        title=f"ParaView MultiBlock rendering, {args.nodes} nodes, {args.datasets} datasets",
    ))
    if args.trace:
        print()
        for name, t in traces:
            print(format_series(name, t))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    rows = []
    for m in sizes:
        fs, placement = _fresh_cluster(m, args.seed)
        data = single_data_workload(m, args.chunks_per_process)
        fs.put_dataset(data)
        from .core import tasks_from_dataset

        tasks = tasks_from_dataset(data)
        base = run_rank_interval(fs, placement, tasks, seed=args.seed)
        fs.reset_counters()
        opass = run_opass_single(fs, placement, tasks, seed=args.seed,
                                 opass_seed=args.seed)
        b, o = base.result.io_stats(), opass.result.io_stats()
        rows.append((m, b["avg"], b["max"], b["min"], o["avg"], o["max"], o["min"]))
    print(format_table(
        ["nodes", "base avg", "base max", "base min",
         "opass avg", "opass max", "opass min"],
        rows,
        title=f"Figure 7(a)/(b) sweep, {args.chunks_per_process} chunks/process",
    ))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .core import tasks_from_dataset
    from .metrics import write_records_csv, write_run_json

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    fs, placement = _fresh_cluster(args.nodes, args.seed)
    data = single_data_workload(args.nodes, args.chunks_per_process)
    fs.put_dataset(data)
    tasks = tasks_from_dataset(data)
    written = []
    for name, runner in [("baseline", run_rank_interval), ("opass", run_opass_single)]:
        fs.reset_counters()
        outcome = runner(fs, placement, tasks, seed=args.seed)
        written.append(write_records_csv(outcome.result, outdir / f"{name}_reads.csv"))
        written.append(
            write_run_json(outcome.result, outdir / f"{name}_summary.json",
                           num_nodes=args.nodes)
        )
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Run one paper figure through the typed experiments API."""
    from . import experiments as exp

    fig = args.id
    if fig == "fig1":
        out = exp.run_motivating_experiment(seed=args.seed)
        print(format_table(
            ["metric", "value"],
            [
                ("max chunks served by a node", int(out.chunks_served.max())),
                ("min chunks served by a node", int(out.chunks_served.min())),
                ("avg io (s)", f"{out.run.io_stats()['avg']:.2f}"),
                ("max io (s)", f"{out.run.io_stats()['max']:.2f}"),
            ],
            title="Figure 1 (64 nodes, 128 chunks, rank intervals)",
        ))
    elif fig in ("fig7", "fig8"):
        cmp = exp.run_single_data_comparison(args.nodes, seed=args.seed)
        b, o = cmp.base.io_stats(), cmp.opass.io_stats()
        print(format_table(
            ["method", "avg io", "max io", "min io", "max MB/node", "min MB/node"],
            [
                ("w/o Opass", b["avg"], b["max"], b["min"],
                 float(cmp.base_served_mb.max()), float(cmp.base_served_mb.min())),
                ("with Opass", o["avg"], o["max"], o["min"],
                 float(cmp.opass_served_mb.max()), float(cmp.opass_served_mb.min())),
            ],
            title=f"Figures 7/8 at {args.nodes} nodes",
        ))
    elif fig == "fig9" or fig == "fig10":
        cmp = exp.run_multi_data_comparison(num_nodes=args.nodes, seed=args.seed)
        print(format_table(
            ["method", "avg io", "locality", "max MB/node"],
            [
                ("w/o Opass", cmp.base.result.io_stats()["avg"],
                 f"{cmp.base.result.locality_fraction:.0%}",
                 float(cmp.base_served_mb.max())),
                ("with Opass", cmp.opass.result.io_stats()["avg"],
                 f"{cmp.opass.result.locality_fraction:.0%}",
                 float(cmp.opass_served_mb.max())),
            ],
            title=f"Figures 9/10 at {args.nodes} nodes "
                  f"(improvement {cmp.io_improvement:.1f}x)",
        ))
    elif fig == "fig11":
        cmp = exp.run_dynamic_comparison(num_nodes=args.nodes, seed=args.seed)
        print(format_table(
            ["method", "avg io", "locality", "makespan"],
            [
                ("default dynamic", cmp.base.result.io_stats()["avg"],
                 f"{cmp.base.result.locality_fraction:.0%}",
                 cmp.base.result.makespan),
                ("Opass dynamic", cmp.opass.result.io_stats()["avg"],
                 f"{cmp.opass.result.locality_fraction:.0%}",
                 cmp.opass.result.makespan),
            ],
            title=f"Figure 11 at {args.nodes} nodes "
                  f"(improvement {cmp.io_improvement:.1f}x)",
        ))
    elif fig == "fig12":
        cmp = exp.run_paraview_comparison(num_nodes=args.nodes, seed=args.seed)
        print(format_table(
            ["method", "avg call", "std", "min", "max", "total (s)"],
            [
                ("w/o Opass", cmp.stock.avg_call_time, cmp.stock.std_call_time,
                 cmp.stock.min_call_time, cmp.stock.max_call_time,
                 cmp.stock.total_execution_time),
                ("with Opass", cmp.opass.avg_call_time, cmp.opass.std_call_time,
                 cmp.opass.min_call_time, cmp.opass.max_call_time,
                 cmp.opass.total_execution_time),
            ],
            title=f"Figure 12 at {args.nodes} nodes "
                  f"(saves {cmp.time_saved:.0f} s)",
        ))
    else:
        raise SystemExit(f"unknown figure id {fig!r} "
                         "(expected fig1/fig7/fig8/fig9/fig10/fig11/fig12)")
    return 0


def cmd_hotspot(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis import empirical_max_served, hotspot_summary

    s = hotspot_summary(args.chunks, args.replication, args.nodes)
    rng = np.random.default_rng(args.seed)
    mc = empirical_max_served(
        args.chunks, args.replication, args.nodes, trials=args.trials, rng=rng
    )
    print(format_table(
        ["metric", "value"],
        [
            ("ideal share (chunks/node)", f"{s.ideal_share:.2f}"),
            ("E[hottest node] (model)", f"{s.expected_max:.1f} chunks"),
            ("E[hottest node] (Monte-Carlo)", f"{mc:.1f} chunks"),
            ("overload factor", f"{s.overload_factor:.1f}x ideal"),
        ],
        title=f"hottest-node prediction: n={args.chunks}, r={args.replication}, m={args.nodes}",
    ))
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from .dfs import HdfsWriterLocalPlacement
    from .dfs.chunk import uniform_dataset
    from .simulate import DatasetIngest

    spec = ClusterSpec.homogeneous(args.nodes)
    fs = DistributedFileSystem(
        spec,
        replication=args.replication,
        placement=HdfsWriterLocalPlacement(),
        seed=args.seed,
    )
    data = uniform_dataset("ingest", args.chunks)
    writers = ProcessPlacement.one_per_node(args.nodes)
    result = DatasetIngest(fs, writers, data, seed=args.seed).run()
    s = result.write_stats()
    print(format_table(
        ["metric", "value"],
        [
            ("chunks written", len(result.records)),
            ("data written", f"{result.bytes_written / 1e9:.1f} GB"),
            ("avg chunk write", f"{s['avg']:.2f} s"),
            ("max chunk write", f"{s['max']:.2f} s"),
            ("ingest makespan", f"{result.makespan:.1f} s"),
        ],
        title=f"HDFS write pipeline: {args.nodes} writers, r={args.replication}",
    ))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .report import ReportConfig, generate_report

    cfg = ReportConfig(
        num_nodes=args.nodes, seed=args.seed,
        include_extensions=args.extensions,
    )
    text = generate_report(cfg)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .analysis import validation_grid

    sizes = tuple(int(s) for s in args.sizes.split(","))
    rows = validation_grid(cluster_sizes=sizes, trials=args.trials, seed=args.seed)
    print(format_table(
        ["nodes", "r", "model locality", "simulated", "|error|"],
        [
            (r.num_nodes, r.replication, r.model_locality,
             r.simulated_locality, r.locality_error)
            for r in rows
        ],
        title="model vs simulation locality (random assignment)",
        float_fmt="{:.3f}",
    ))
    worst = max(r.locality_error for r in rows)
    print(f"\nworst deviation: {worst:.3f}")
    return 0 if worst < 0.1 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="opass",
        description="Opass (IPDPS 2015) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="closed-form §III locality/balance analysis")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("single", help="§V-A1 single-data comparison")
    p.add_argument("--nodes", type=int, default=64)
    p.add_argument("--chunks-per-process", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_single)

    p = sub.add_parser("multi", help="§V-A2 multi-data comparison")
    p.add_argument("--nodes", type=int, default=64)
    p.add_argument("--tasks", type=int, default=640)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_multi)

    p = sub.add_parser("dynamic", help="§V-A3 dynamic comparison")
    p.add_argument("--nodes", type=int, default=64)
    p.add_argument("--tasks", type=int, default=640)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_dynamic)

    p = sub.add_parser("paraview", help="§V-B ParaView comparison")
    p.add_argument("--nodes", type=int, default=64)
    p.add_argument("--datasets", type=int, default=640)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", action="store_true", help="print per-call traces")
    p.set_defaults(func=cmd_paraview)

    p = sub.add_parser("sweep", help="figure 7/8 cluster-size sweep")
    p.add_argument("--sizes", default="16,32,48,64,80",
                   help="comma-separated cluster sizes")
    p.add_argument("--chunks-per-process", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("export", help="run single-data comparison, write CSV/JSON")
    p.add_argument("outdir", help="output directory")
    p.add_argument("--nodes", type=int, default=32)
    p.add_argument("--chunks-per-process", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("validate", help="model-vs-simulation consistency grid")
    p.add_argument("--sizes", default="8,16,32")
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("report", help="regenerate a full reproduction report")
    p.add_argument("-o", "--output", default=None, help="write markdown here")
    p.add_argument("--nodes", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--extensions", action="store_true",
                   help="append analytical extension sections")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("figure", help="run one paper figure by id")
    p.add_argument("id", help="fig1 | fig7 | fig8 | fig9 | fig10 | fig11 | fig12")
    p.add_argument("--nodes", type=int, default=16,
                   help="cluster size (paper uses 64; default 16 for speed)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("hotspot", help="hottest-node extreme-value prediction")
    p.add_argument("--chunks", type=int, default=640)
    p.add_argument("--replication", type=int, default=3)
    p.add_argument("--nodes", type=int, default=64)
    p.add_argument("--trials", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_hotspot)

    p = sub.add_parser("ingest", help="timed HDFS write-pipeline ingestion")
    p.add_argument("--nodes", type=int, default=32)
    p.add_argument("--chunks", type=int, default=320)
    p.add_argument("--replication", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_ingest)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
