"""Monte-Carlo cross-validation of the §III closed forms.

Simulates the paper's random model directly — random r-way placement plus
random task assignment and random remote-replica choice — with vectorised
numpy sampling, and returns empirical counterparts of the analytical
quantities.  Used by tests and by ``bench_fig3`` / ``bench_sec3`` to show
model and simulation agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def sample_placement(
    num_chunks: int,
    replication: int,
    num_nodes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample an (n, r) array of replica node ids, distinct per row."""
    if num_nodes < replication:
        raise ValueError("need at least `replication` nodes")
    out = np.empty((num_chunks, replication), dtype=np.int64)
    for i in range(num_chunks):
        out[i] = rng.choice(num_nodes, size=replication, replace=False)
    return out


def empirical_local_chunks(
    num_chunks: int,
    replication: int,
    num_nodes: int,
    trials: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Samples of X = chunks local to node 0 under random placement.

    By symmetry the process's node can be fixed at 0: X counts chunks with a
    replica on node 0.  Vectorised: each chunk contributes Bernoulli(r/m)
    (exact, because replicas are distinct nodes).
    """
    p = replication / num_nodes
    return rng.binomial(num_chunks, p, size=trials)


def empirical_cdf(samples: np.ndarray, k: int | np.ndarray) -> np.ndarray | float:
    """Empirical P(sample <= k), vectorised over ``k``."""
    samples = np.asarray(samples)
    k_arr = np.atleast_1d(np.asarray(k))
    cdf = (samples[None, :] <= k_arr[:, None]).mean(axis=1)
    return cdf if np.ndim(k) else float(cdf[0])


@dataclass(frozen=True)
class ServeSample:
    """One trial's per-node served-chunk counts."""

    served: np.ndarray  # shape (m,), chunks served per node
    stored: np.ndarray  # shape (m,), chunks stored per node


def simulate_serve_counts(
    num_chunks: int,
    replication: int,
    num_nodes: int,
    rng: np.random.Generator,
) -> ServeSample:
    """One draw of the §III-B serving model.

    Every chunk is requested exactly once and served by a uniformly random
    replica holder (the all-remote approximation the paper makes).
    """
    placement = sample_placement(num_chunks, replication, num_nodes, rng)
    pick = rng.integers(replication, size=num_chunks)
    servers = placement[np.arange(num_chunks), pick]
    served = np.bincount(servers, minlength=num_nodes)
    stored = np.bincount(placement.ravel(), minlength=num_nodes)
    return ServeSample(served=served, stored=stored)


def empirical_nodes_serving(
    num_chunks: int,
    replication: int,
    num_nodes: int,
    trials: int,
    rng: np.random.Generator,
) -> dict[str, float]:
    """Average per-trial counts of under/over-loaded nodes (§III-B)."""
    at_most_1 = 0.0
    more_than_8 = 0.0
    max_served = 0.0
    for _ in range(trials):
        sample = simulate_serve_counts(num_chunks, replication, num_nodes, rng)
        at_most_1 += float(np.sum(sample.served <= 1))
        more_than_8 += float(np.sum(sample.served > 8))
        max_served += float(sample.served.max())
    return {
        "nodes_at_most_1": at_most_1 / trials,
        "nodes_more_than_8": more_than_8 / trials,
        "mean_max_served": max_served / trials,
    }
