"""Bottleneck lower bounds on parallel-read makespan.

Classic bandwidth arguments give two lower bounds on any execution of a
read workload, independent of scheduling:

* **server bound** — node j must push every byte it serves through its
  disk: makespan ≥ max_j served_bytes(j) / disk_bw(j);
* **reader bound** — process i must pull every byte it reads through the
  best pipe available to it (its own disk when local, the remote stream
  ceiling when not): makespan ≥ max_i read_bytes(i) / pipe(i).

A perfectly local, perfectly balanced schedule (Opass with a full
matching) meets both bounds with equality up to per-read latency — which
is why its measured makespan is ~q·chunk/disk_bw.  The baseline's
makespan exceeds the bounds by its contention losses.  ``bench_ext_bounds``
checks both directions against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..core.bipartite import LocalityGraph
from ..dfs.cluster import ClusterSpec


@dataclass(frozen=True)
class MakespanBounds:
    """Lower bounds for one (assignment, layout, cluster) triple."""

    server_bound: float
    reader_bound: float

    @property
    def bound(self) -> float:
        return max(self.server_bound, self.reader_bound)


def reader_bound(
    assignment: Assignment,
    graph: LocalityGraph,
    spec: ClusterSpec,
) -> float:
    """max over processes of local/disk + remote/stream service demand.

    Local bytes stream from the process's own disk; remote bytes cannot
    exceed the per-stream ceiling (reads are sequential per process).
    """
    worst = 0.0
    for rank, tasks in assignment.tasks_of.items():
        node = graph.placement.node_of(rank)
        disk_bw = spec.node(node).disk_bw
        local = 0
        remote = 0
        for t in tasks:
            size = graph.task_bytes(t)
            co = graph.edge_weight(rank, t)
            local += co
            remote += size - co
        demand = local / disk_bw + remote / min(spec.remote_stream_bw, disk_bw)
        worst = max(worst, demand)
    return worst


def server_bound_from_served(
    served_bytes: dict[int, int] | np.ndarray,
    spec: ClusterSpec,
) -> float:
    """max over nodes of served bytes / disk bandwidth (post-hoc bound)."""
    if isinstance(served_bytes, np.ndarray):
        items = enumerate(served_bytes.tolist())
    else:
        items = served_bytes.items()
    worst = 0.0
    for node, served in items:
        worst = max(worst, served / spec.node(node).disk_bw)
    return worst


def expected_server_bound(
    assignment: Assignment,
    graph: LocalityGraph,
    spec: ClusterSpec,
) -> float:
    """A-priori server bound: local bytes are served by the owner's node;
    remote bytes by *some* replica holder — spread optimally, the best any
    schedule can hope for is total-remote / aggregate disk bandwidth, with
    per-node local service as a floor."""
    m = graph.num_processes
    local_served = np.zeros(spec.num_nodes)
    total_remote = 0.0
    for rank, tasks in assignment.tasks_of.items():
        node = graph.placement.node_of(rank)
        for t in tasks:
            co = graph.edge_weight(rank, t)
            local_served[node] += co
            total_remote += graph.task_bytes(t) - co
    per_node_local = max(
        (local_served[n.node_id] / n.disk_bw for n in spec), default=0.0
    )
    aggregate_bw = sum(n.disk_bw for n in spec)
    return max(per_node_local, total_remote / aggregate_bw if aggregate_bw else 0.0)


def makespan_bounds(
    assignment: Assignment,
    graph: LocalityGraph,
    spec: ClusterSpec,
) -> MakespanBounds:
    """Both a-priori lower bounds for an assignment on a layout."""
    return MakespanBounds(
        server_bound=expected_server_bound(assignment, graph, spec),
        reader_bound=reader_bound(assignment, graph, spec),
    )
