"""Imbalanced-access pattern analysis (paper §III-B).

For a storage node ``n_j``: ``Y`` = number of chunks stored on ``n_j``
follows ``Binomial(n, r/m)``.  Assuming (per §III-A) that essentially all
requests are remote and each of a chunk's ``r`` replica holders is equally
likely to serve it, the number of chunks served by ``n_j`` is, conditionally
on ``Y = a``, ``Binomial(a, 1/r)``; by the law of total probability

    P(Z <= k) = Σ_a P(Binomial(a, 1/r) <= k) · P(Y = a).

Binomial thinning collapses the compound law exactly: ``Z ~ Binomial(n,
(r/m)·(1/r)) = Binomial(n, 1/m)``.  We implement both the paper's
total-probability sum (:func:`cdf_served_chunks_total_probability`) and the
closed form (:func:`served_chunks_distribution`), and test they agree.

Note on the paper's numbers: §III-B multiplies the probabilities by 512
(= n) to get "expected number of nodes", where the number of nodes m = 128
is the meaningful multiplier; with m = 128 the first quantity
(128 · P(Z ≤ 1)) indeed rounds to the paper's 11.  We expose both
multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


def _validate(num_chunks: int, replication: int, num_nodes: int) -> None:
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    if replication <= 0:
        raise ValueError("replication must be positive")
    if num_nodes < replication:
        raise ValueError("need at least `replication` nodes")


def stored_chunks_distribution(
    num_chunks: int, replication: int, num_nodes: int
) -> stats.rv_discrete:
    """Y ~ Binomial(n, r/m): chunks stored on one node."""
    _validate(num_chunks, replication, num_nodes)
    return stats.binom(num_chunks, replication / num_nodes)


def served_chunks_distribution(
    num_chunks: int, replication: int, num_nodes: int
) -> stats.rv_discrete:
    """Z ~ Binomial(n, 1/m): chunks served by one node (closed form)."""
    _validate(num_chunks, replication, num_nodes)
    return stats.binom(num_chunks, 1.0 / num_nodes)


def cdf_served_chunks(
    k: int | np.ndarray, num_chunks: int, replication: int, num_nodes: int
) -> np.ndarray | float:
    """P(Z <= k) via the exact thinned binomial."""
    return served_chunks_distribution(num_chunks, replication, num_nodes).cdf(k)


def cdf_served_chunks_total_probability(
    k: int, num_chunks: int, replication: int, num_nodes: int
) -> float:
    """P(Z <= k) computed exactly as the paper writes it (summed over a).

    ``P(Z<=k) = Σ_{a=0}^{n} [Σ_{i=0}^{k} C(a,i)(1/r)^i (1-1/r)^{a-i}] P(Y=a)``
    """
    _validate(num_chunks, replication, num_nodes)
    if k < 0:
        return 0.0
    a = np.arange(num_chunks + 1)
    p_y = stats.binom.pmf(a, num_chunks, replication / num_nodes)
    # P(Binomial(a, 1/r) <= k) for every a at once.
    cond = stats.binom.cdf(k, a, 1.0 / replication)
    return float(np.sum(cond * p_y))


def expected_nodes_serving_at_most(
    k: int,
    num_chunks: int,
    replication: int,
    num_nodes: int,
    *,
    multiplier: int | None = None,
) -> float:
    """Expected count of nodes serving ≤ k chunks.

    ``multiplier`` defaults to the node count m (the statistically meaningful
    choice); pass ``num_chunks`` to reproduce the paper's literal arithmetic.
    """
    mult = num_nodes if multiplier is None else multiplier
    return mult * float(cdf_served_chunks(k, num_chunks, replication, num_nodes))


def expected_nodes_serving_more_than(
    k: int,
    num_chunks: int,
    replication: int,
    num_nodes: int,
    *,
    multiplier: int | None = None,
) -> float:
    """Expected count of nodes serving > k chunks."""
    mult = num_nodes if multiplier is None else multiplier
    return mult * float(1.0 - cdf_served_chunks(k, num_chunks, replication, num_nodes))


@dataclass(frozen=True)
class BalanceSummary:
    """The §III-B quantities for one configuration."""

    num_chunks: int
    replication: int
    num_nodes: int
    expected_served: float
    nodes_at_most_1: float
    nodes_more_than_8: float
    paper_multiplier_at_most_1: float
    paper_multiplier_more_than_8: float


def section3b_summary(
    num_chunks: int = 512, replication: int = 3, num_nodes: int = 128
) -> BalanceSummary:
    """Reproduce the §III-B example (r=3, n=512, m=128)."""
    return BalanceSummary(
        num_chunks=num_chunks,
        replication=replication,
        num_nodes=num_nodes,
        expected_served=num_chunks / num_nodes,
        nodes_at_most_1=expected_nodes_serving_at_most(
            1, num_chunks, replication, num_nodes
        ),
        nodes_more_than_8=expected_nodes_serving_more_than(
            8, num_chunks, replication, num_nodes
        ),
        paper_multiplier_at_most_1=expected_nodes_serving_at_most(
            1, num_chunks, replication, num_nodes, multiplier=num_chunks
        ),
        paper_multiplier_more_than_8=expected_nodes_serving_more_than(
            8, num_chunks, replication, num_nodes, multiplier=num_chunks
        ),
    )
