"""Systematic cross-validation: §III closed forms vs the full simulator.

The analytical models (binomial locality, thinned-binomial serving) and
the discrete-event simulator are independent implementations of the same
random experiment.  This module runs both over a configuration grid and
reports the deviations, giving the repository an internal consistency
check that is itself a reproducible experiment (``bench_validation``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.baselines import random_assignment
from ..core.bipartite import ProcessPlacement
from ..core.tasks import tasks_from_dataset
from ..dfs.chunk import uniform_dataset
from ..dfs.cluster import ClusterSpec
from ..dfs.filesystem import DistributedFileSystem
from ..simulate.runner import ParallelReadRun, StaticSource
from .balance import served_chunks_distribution
from .locality import expected_local_fraction


@dataclass(frozen=True)
class ValidationRow:
    """Model vs simulation for one (m, r, chunks/process) configuration."""

    num_nodes: int
    replication: int
    chunks_per_process: int
    model_locality: float
    simulated_locality: float
    model_served_std: float
    simulated_served_std: float

    @property
    def locality_error(self) -> float:
        return abs(self.model_locality - self.simulated_locality)

    @property
    def served_std_ratio(self) -> float:
        if self.model_served_std == 0:
            return 1.0
        return self.simulated_served_std / self.model_served_std


def validate_configuration(
    num_nodes: int,
    replication: int,
    chunks_per_process: int,
    *,
    trials: int = 3,
    seed: int = 0,
) -> ValidationRow:
    """Run ``trials`` seeded experiments and compare with the closed forms.

    Locality: a random task assignment makes each read local with
    probability r/m — the simulated local fraction should match.
    Serving spread: under all-remote random serving each node serves
    Z ~ Binomial(n, 1/m) chunks; with local-first reads the simulated
    per-node serve counts should have a spread of the same order (local
    reads pin n·r/m chunks to their own nodes, slightly flattening it).
    """
    n = num_nodes * chunks_per_process
    sim_locality = []
    sim_served_std = []
    for t in range(trials):
        fs = DistributedFileSystem(
            ClusterSpec.homogeneous(num_nodes),
            replication=replication,
            seed=seed * 1000 + t,
        )
        data = uniform_dataset(f"v{t}", n)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(num_nodes)
        tasks = tasks_from_dataset(data)
        assignment = random_assignment(n, num_nodes, seed=seed * 1000 + t)
        result = ParallelReadRun(
            fs, placement, tasks, StaticSource(assignment), seed=seed * 1000 + t
        ).run()
        sim_locality.append(result.locality_fraction)
        served_chunks = result.served_bytes_array(num_nodes) / data.files[0].size
        sim_served_std.append(float(served_chunks.std()))
    model_served_std = float(served_chunks_distribution(n, replication, num_nodes).std())
    return ValidationRow(
        num_nodes=num_nodes,
        replication=replication,
        chunks_per_process=chunks_per_process,
        model_locality=expected_local_fraction(replication, num_nodes),
        simulated_locality=float(np.mean(sim_locality)),
        model_served_std=model_served_std,
        simulated_served_std=float(np.mean(sim_served_std)),
    )


def validation_grid(
    *,
    cluster_sizes: tuple[int, ...] = (8, 16, 32),
    replications: tuple[int, ...] = (2, 3),
    chunks_per_process: int = 10,
    trials: int = 3,
    seed: int = 0,
) -> list[ValidationRow]:
    """The full model-vs-simulation consistency sweep."""
    rows = []
    for m in cluster_sizes:
        for r in replications:
            if r > m:
                continue
            rows.append(
                validate_configuration(
                    m, r, chunks_per_process, trials=trials, seed=seed
                )
            )
    return rows
