"""Remote-access pattern analysis (paper §III-A, Figure 3).

With ``n`` chunks randomly assigned to parallel processes on an ``m``-node
cluster under ``r``-way random replication, the number of chunks a given
process can read locally is ``X ~ Binomial(n, r/m)``.  The paper plots the
CDF of X for n = 512, r = 3 and m ∈ {64, 128, 256, 512}, and reports
P(X > 5) for each m.

All functions are vectorised over ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

#: The cluster sizes plotted in Figure 3.
FIGURE3_CLUSTER_SIZES = (64, 128, 256, 512)
#: Figure 3's dataset: "a 32G dataset consisting of 512 chunks", r = 3.
FIGURE3_NUM_CHUNKS = 512
FIGURE3_REPLICATION = 3


def _validate(num_chunks: int, replication: int, num_nodes: int) -> None:
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    if replication <= 0:
        raise ValueError("replication must be positive")
    if num_nodes < replication:
        raise ValueError("need at least `replication` nodes")


def local_read_probability(replication: int, num_nodes: int) -> float:
    """P(one chunk is readable locally by a given process) = r/m."""
    _validate(1, replication, num_nodes)
    return replication / num_nodes


def local_chunks_distribution(
    num_chunks: int, replication: int, num_nodes: int
) -> stats.rv_discrete:
    """The Binomial(n, r/m) law of the number of locally-readable chunks."""
    _validate(num_chunks, replication, num_nodes)
    return stats.binom(num_chunks, replication / num_nodes)


def cdf_local_chunks(
    k: int | np.ndarray,
    num_chunks: int,
    replication: int,
    num_nodes: int,
) -> np.ndarray | float:
    """P(X <= k): the paper's cumulative distribution function.

    ``P(X <= k) = sum_{i=0}^{k} C(n, i) (r/m)^i (1 - r/m)^{n-i}``
    """
    dist = local_chunks_distribution(num_chunks, replication, num_nodes)
    return dist.cdf(k)


def prob_more_than(
    k: int,
    num_chunks: int,
    replication: int,
    num_nodes: int,
) -> float:
    """P(X > k) = 1 − P(X ≤ k); the §III-A headline quantity."""
    return float(1.0 - cdf_local_chunks(k, num_chunks, replication, num_nodes))


def expected_local_chunks(num_chunks: int, replication: int, num_nodes: int) -> float:
    """E[X] = n·r/m."""
    _validate(num_chunks, replication, num_nodes)
    return num_chunks * replication / num_nodes


def expected_local_fraction(replication: int, num_nodes: int) -> float:
    """Expected fraction of a process's reads that can be local (r/m)."""
    return local_read_probability(replication, num_nodes)


@dataclass(frozen=True)
class Figure3Row:
    """One CDF series of Figure 3."""

    num_nodes: int
    k: np.ndarray
    cdf: np.ndarray
    prob_more_than_5: float


def figure3_series(
    k_max: int = 20,
    num_chunks: int = FIGURE3_NUM_CHUNKS,
    replication: int = FIGURE3_REPLICATION,
    cluster_sizes: tuple[int, ...] = FIGURE3_CLUSTER_SIZES,
) -> list[Figure3Row]:
    """Compute every series of Figure 3 plus the §III-A P(X>5) values."""
    if k_max < 0:
        raise ValueError("k_max must be non-negative")
    ks = np.arange(k_max + 1)
    rows = []
    for m in cluster_sizes:
        cdf = np.asarray(cdf_local_chunks(ks, num_chunks, replication, m))
        rows.append(
            Figure3Row(
                num_nodes=m,
                k=ks,
                cdf=cdf,
                prob_more_than_5=prob_more_than(5, num_chunks, replication, m),
            )
        )
    return rows


def paper_figure3_series(
    k_max: int = 20,
    num_chunks: int = FIGURE3_NUM_CHUNKS,
    cluster_sizes: tuple[int, ...] = FIGURE3_CLUSTER_SIZES,
) -> list[Figure3Row]:
    """Figure 3 with the parameterisation the paper *actually printed*.

    The paper's §III-A formula is ``Binomial(n, r/m)``, but the percentages
    it reports (81.09 %, 21.43 %, 1.64 % for m = 64/128/256) are those of
    ``Binomial(n, 1/m)`` — i.e. the formula evaluated with r = 1.  (The
    quoted 0.46 % for m = 512 matches neither exactly; ``Binomial(512,
    1/512)`` gives ≈0.06 %.)  This helper reproduces the printed numbers so
    the benchmark can report both the corrected curve and the paper's.
    """
    return figure3_series(
        k_max=k_max,
        num_chunks=num_chunks,
        replication=1,
        cluster_sizes=cluster_sizes,
    )
