"""Extreme-value analysis: how hot does the hottest node get?

§III-B bounds the tails of one node's serving load; the figures' striking
numbers (node-43 serving >6 chunks in Fig 1, a node serving >1400 MB in
Fig 8(c)) are about the *maximum* over all m nodes.  With per-node loads
Z_j ~ Binomial(n, 1/m), the independence approximation

    P(max_j Z_j ≤ k) ≈ P(Z ≤ k)^m

is accurate for m ≫ 1 (the loads are negatively associated, so the
approximation is slightly conservative).  These helpers compute that
distribution, its mean, and the paper-flavoured summary "the hottest node
serves X× the ideal share"; Monte-Carlo cross-checks live in the tests and
``bench_ext_extremes``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .balance import served_chunks_distribution


def max_served_cdf(
    k: int | np.ndarray, num_chunks: int, replication: int, num_nodes: int
) -> np.ndarray | float:
    """P(max over nodes of chunks served ≤ k), independence approximation."""
    per_node = served_chunks_distribution(num_chunks, replication, num_nodes)
    return per_node.cdf(k) ** num_nodes


def max_served_pmf(
    num_chunks: int, replication: int, num_nodes: int
) -> np.ndarray:
    """PMF of the maximum served count over k = 0..n."""
    ks = np.arange(num_chunks + 1)
    cdf = np.asarray(max_served_cdf(ks, num_chunks, replication, num_nodes))
    pmf = np.diff(np.concatenate(([0.0], cdf)))
    return pmf


def expected_max_served(num_chunks: int, replication: int, num_nodes: int) -> float:
    """E[max_j Z_j] under the independence approximation."""
    pmf = max_served_pmf(num_chunks, replication, num_nodes)
    return float(np.sum(np.arange(num_chunks + 1) * pmf))


@dataclass(frozen=True)
class HotspotSummary:
    """The 'hottest node' story for one configuration."""

    num_chunks: int
    replication: int
    num_nodes: int
    ideal_share: float
    expected_max: float

    @property
    def overload_factor(self) -> float:
        """Hottest node's load relative to the ideal even share."""
        if self.ideal_share == 0:
            return 1.0
        return self.expected_max / self.ideal_share


def hotspot_summary(
    num_chunks: int, replication: int, num_nodes: int
) -> HotspotSummary:
    """Expected hottest-node load vs the ideal share n/m."""
    return HotspotSummary(
        num_chunks=num_chunks,
        replication=replication,
        num_nodes=num_nodes,
        ideal_share=num_chunks / num_nodes,
        expected_max=expected_max_served(num_chunks, replication, num_nodes),
    )


def empirical_max_served(
    num_chunks: int,
    replication: int,
    num_nodes: int,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo E[max_j Z_j] under the exact (dependent) serving model."""
    from .montecarlo import simulate_serve_counts

    total = 0.0
    for _ in range(trials):
        sample = simulate_serve_counts(num_chunks, replication, num_nodes, rng)
        total += float(sample.served.max())
    return total / trials
