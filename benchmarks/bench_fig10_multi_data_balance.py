"""Figure 10 reproduction: per-node data served under multi-input tasks.

Paper finding: "While the balance of data access between nodes is improved
with the use of opass, the change is not nearly as dramatic as with the
equal data assignment and dynamic data assignment tests" — the three inputs
of a task are not always co-located, so some reads stay remote.
"""

import numpy as np

from repro.experiments import run_multi_data_comparison
from repro.metrics import coefficient_of_variation, jains_fairness
from repro.viz import format_series, paper_vs_measured

NODES = 64
TASKS = 640


def test_fig10_multi_data_balance(benchmark):
    comparison = benchmark.pedantic(
        lambda: run_multi_data_comparison(num_nodes=NODES, num_tasks=TASKS, seed=0),
        rounds=1, iterations=1,
    )
    base, opass = comparison.base_served_mb, comparison.opass_served_mb

    print("\n=== Figure 10: MB served per node, multi-input tasks, 64 nodes ===")
    print(format_series("w/o Opass ", base, fmt="{:.0f}", max_items=32))
    print(format_series("with Opass", opass, fmt="{:.0f}", max_items=32))
    print()
    print(paper_vs_measured([
        ("balance improves", "yes", f"CV {coefficient_of_variation(base):.2f} -> "
                                    f"{coefficient_of_variation(opass):.2f}"),
        ("but not as dramatic as Fig 8", "some reads stay remote",
         f"Opass spread {opass.min():.0f}-{opass.max():.0f} MB (Fig 8 was exactly flat)"),
        ("Jain fairness", "-", f"{jains_fairness(base):.3f} -> {jains_fairness(opass):.3f}"),
    ], title="Figure 10 summary"))

    assert np.isclose(base.sum(), opass.sum())  # same bytes served overall
    # Balance improves...
    assert coefficient_of_variation(opass) < coefficient_of_variation(base)
    assert jains_fairness(opass) > jains_fairness(base)
    # ...but is NOT perfectly flat (unlike the single-data full matching).
    assert opass.max() - opass.min() > 10.0
