"""Ablation: multiple processes per node — and multiprocess solves.

Marmot has "128 nodes / 256 cores": the natural deployment runs 2 ranks
per node.  Co-ranked processes share their node's disk, NIC and replica
set, so the matching hands the node's chunks to either of its ranks while
quotas stay per-process.  Opass's win survives: reads remain local and
per-node serving stays at the ideal share (now consumed by two readers).

A second ablation exercises the simulator's own multiprocessing: the
same run on a :class:`repro.parallel.ComponentSolvePool`-backed engine
must replay byte-identically (the pool workers run the exact in-process
kernels over shared memory) while the dispatch counters show the solves
really crossed the process boundary.
"""

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    locality_fraction,
    optimize_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.metrics import ServeMonitor, jains_fairness
from repro.parallel import ComponentSolvePool
from repro.simulate import (
    ParallelReadRun,
    Simulation,
    StaticSource,
    cluster_resources,
)
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 16
RANKS_PER_NODE = 2


def run_comparison(seed: int = 0):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)
    # 10 chunks per PROCESS (= 20 per node).
    data = single_data_workload(NODES * RANKS_PER_NODE, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.k_per_node(NODES, RANKS_PER_NODE)
    tasks = tasks_from_dataset(data)
    graph = graph_from_filesystem(fs, tasks, placement)
    out = {}
    for name, assignment in [
        ("baseline", rank_interval_assignment(len(tasks), placement.num_processes)),
        ("opass", optimize_single_data(graph, seed=seed).assignment),
    ]:
        monitor = ServeMonitor(fs)
        monitor.start()
        run = ParallelReadRun(
            fs, placement, tasks, StaticSource(assignment), seed=seed
        ).run()
        out[name] = (locality_fraction(assignment, graph), run, monitor.served_mb_array())
        fs.reset_counters()
    return out


def test_ablation_two_ranks_per_node(benchmark):
    out = benchmark.pedantic(lambda: run_comparison(seed=0), rounds=1, iterations=1)

    rows = []
    for name, (loc, run, served) in out.items():
        rows.append((
            name, f"{loc:.0%}", run.io_stats()["avg"], run.io_stats()["max"],
            f"{jains_fairness(served):.3f}", run.makespan,
        ))
    print("\n=== ablation: 2 ranks per node (16 nodes / 32 processes) ===")
    print(format_table(
        ["method", "locality", "avg io (s)", "max io (s)", "serve fairness",
         "makespan (s)"],
        rows,
    ))

    base_loc, base_run, base_served = out["baseline"]
    opass_loc, opass_run, opass_served = out["opass"]

    assert base_run.tasks_completed == opass_run.tasks_completed == 320
    # Opass still achieves (nearly) full locality with co-ranked processes.
    assert opass_loc > 0.95
    assert opass_run.locality_fraction > 0.95
    # Two local readers share one disk: ~2x the solo local read time, but
    # flat — and still far better than the contended baseline.
    assert opass_run.io_stats()["avg"] < base_run.io_stats()["avg"]
    assert opass_run.io_stats()["max"] < base_run.io_stats()["max"]
    assert jains_fairness(opass_served) > jains_fairness(base_served)


def _run_baseline(seed: int, sim: Simulation | None):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)
    data = single_data_workload(NODES * RANKS_PER_NODE, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.k_per_node(NODES, RANKS_PER_NODE)
    tasks = tasks_from_dataset(data)
    assignment = rank_interval_assignment(len(tasks), placement.num_processes)
    if sim is not None:
        sim.add_resources(cluster_resources(fs.spec))
    run = ParallelReadRun(
        fs, placement, tasks, StaticSource(assignment), seed=seed, sim=sim
    )
    return run.run(), run


def test_ablation_pooled_solves_identical(benchmark):
    """Shared-memory pooled solves replay the serial run byte-for-byte."""

    def compare():
        serial_result, serial_run = _run_baseline(0, None)
        with ComponentSolvePool(min_flows=0) as pool:
            pooled_sim = Simulation(allocator="component", parallel=pool)
            pooled_result, pooled_run = _run_baseline(0, pooled_sim)
        return serial_result, serial_run, pooled_result, pooled_run

    serial_result, serial_run, pooled_result, pooled_run = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    snap = pooled_run.sim.perf.snapshot()
    print("\n=== ablation: pooled component solves (16 nodes / 32 processes) ===")
    print(format_table(
        ["engine", "makespan (s)", "events", "parallel solves",
         "pool dispatch (s)"],
        [
            ("serial", serial_result.makespan,
             serial_run.sim.events_processed, 0, "-"),
            ("pooled", pooled_result.makespan,
             pooled_run.sim.events_processed, snap["parallel_solves"],
             f"{snap['pool_dispatch_wall']:.3f}"),
        ],
    ))

    assert pooled_result.makespan == serial_result.makespan
    assert pooled_run.sim.events_processed == serial_run.sim.events_processed
    assert [
        (r.seq, r.chunk, r.server_node, r.end_time) for r in pooled_result.records
    ] == [
        (r.seq, r.chunk, r.server_node, r.end_time) for r in serial_result.records
    ]
    assert snap["parallel_solves"] > 0
