"""Figure 8 reproduction: per-node data served, balance vs cluster size.

Paper findings:
* 8(a) — without Opass imbalance grows with the cluster: at 80 nodes the
  max served is 1500 MB vs a 64 MB minimum;
* 8(b) — with Opass every node serves ≈ the ideal share;
* 8(c) — the 64-node per-node series: baseline has nodes above 1400 MB and
  nodes at 64 MB; "with the use of Opass, every storage node serves
  approximately 640 MB".
"""

import numpy as np

from repro.metrics import jains_fairness, summarize
from repro.viz import format_series, format_table, paper_vs_measured

from conftest import SWEEP_SIZES


def test_fig8ab_served_data_vs_cluster_size(benchmark, sweep_results):
    benchmark(lambda: [summarize(r.base_served_mb) for r in sweep_results[64]])
    rows = []
    for m in SWEEP_SIZES:
        runs = sweep_results[m]
        b = [summarize(r.base_served_mb) for r in runs]
        o = [summarize(r.opass_served_mb) for r in runs]
        rows.append((
            m,
            np.mean([s.avg for s in b]),
            np.mean([s.max for s in b]),
            np.mean([s.min for s in b]),
            np.mean([s.avg for s in o]),
            np.mean([s.max for s in o]),
            np.mean([s.min for s in o]),
        ))

    print("\n=== Figure 8(a)/(b): MB served per node vs cluster size (mean of 3 seeds) ===")
    print(format_table(
        ["nodes", "base avg", "base max", "base min",
         "opass avg", "opass max", "opass min"],
        rows, float_fmt="{:.0f}",
    ))

    for m, b_avg, b_max, b_min, o_avg, o_max, o_min in rows:
        # Ideal share: 10 chunks x 64 MB per node.
        assert abs(b_avg - 640) < 1 and abs(o_avg - 640) < 1
        # Opass nearly perfectly balanced; baseline heavily skewed.
        assert o_max - o_min < 0.3 * (b_max - b_min)
        assert b_max > 1.4 * b_avg

    print()
    print(paper_vs_measured([
        ("baseline max served at 80 nodes", "1500 MB", f"{rows[-1][2]:.0f} MB"),
        ("baseline min served at 80 nodes", "64 MB", f"{rows[-1][3]:.0f} MB"),
        ("Opass served per node", "~ideal share", f"{rows[-1][4]:.0f} MB avg"),
    ], title="Figure 8(a)/(b) summary"))


def test_fig8c_64_node_per_node_series(benchmark, sweep_results):
    comparison = sweep_results[64][0]
    benchmark(lambda: jains_fairness(comparison.base_served_mb))
    base = comparison.base_served_mb
    opass = comparison.opass_served_mb

    print("\n=== Figure 8(c): MB served per node, 64 nodes / 640 chunks ===")
    print(format_series("w/o Opass ", base, fmt="{:.0f}", max_items=32))
    print(format_series("with Opass", opass, fmt="{:.0f}", max_items=32))
    print()
    print(paper_vs_measured([
        ("baseline hottest node", ">1400 MB", f"{base.max():.0f} MB"),
        ("baseline coldest node", "64 MB", f"{base.min():.0f} MB"),
        ("Opass per node", "~640 MB", f"{opass.min():.0f}-{opass.max():.0f} MB"),
        ("Jain fairness", "-",
         f"{jains_fairness(base):.3f} -> {jains_fairness(opass):.3f}"),
    ], title="Figure 8(c) summary"))

    assert base.max() > 1000
    assert base.min() <= 256
    assert abs(opass.mean() - 640) < 1
    assert jains_fairness(opass) > 0.99
