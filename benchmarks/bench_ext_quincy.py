"""Extension bench: Quincy-style global min-cost flow vs Opass.

§VI positions Quincy [SOSP'09] as related scheduling work.  Reduced to the
single-data setting, Quincy's global min-cost flow minimises total remote
*bytes* where Opass's unit max-flow maximises the *count* of local tasks.
On the paper's equal-chunk workload the two objectives coincide — same
locality, same balance — but the dense min-cost formulation pays ~100×
more solver time, which is exactly why Opass's sparse locality-graph
matching is the right tool for this problem.
"""

import time

from repro.core import (
    ProcessPlacement,
    fully_local_tasks,
    graph_from_filesystem,
    locality_fraction,
    optimize_quincy,
    optimize_single_data,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.viz import format_table

SIZES = (8, 16, 32)


def run_comparison(seed: int = 0):
    rows = []
    for m in SIZES:
        fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
        data = uniform_dataset(f"q{m}", m * 10)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(m)
        graph = graph_from_filesystem(fs, tasks_from_dataset(data), placement)

        t0 = time.perf_counter()
        flow = optimize_single_data(graph, seed=seed)
        opass_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        quincy, cost = optimize_quincy(graph)
        quincy_ms = (time.perf_counter() - t0) * 1000

        rows.append((
            m,
            locality_fraction(flow.assignment, graph),
            opass_ms,
            locality_fraction(quincy, graph),
            quincy_ms,
            len(fully_local_tasks(flow.assignment, graph))
            - len(fully_local_tasks(quincy, graph)),
        ))
    return rows


def test_ext_quincy_vs_opass(benchmark):
    rows = benchmark.pedantic(lambda: run_comparison(seed=0), rounds=1, iterations=1)
    print("\n=== Quincy (global min-cost flow) vs Opass (sparse max-flow) ===")
    print(format_table(
        ["nodes", "opass locality", "opass ms", "quincy locality",
         "quincy ms", "local-count diff"],
        rows, float_fmt="{:.3f}",
    ))

    for m, opass_loc, opass_ms, quincy_loc, quincy_ms, diff in rows:
        # Identical quality on equal-size chunks.
        assert abs(opass_loc - quincy_loc) < 1e-9
        assert diff == 0
        # Quincy's dense formulation is far slower at every size.
        assert quincy_ms > 5 * opass_ms
    # And the gap widens with scale (superlinear in the dense graph).
    assert rows[-1][4] / rows[-1][2] > rows[0][4] / rows[0][2]
