"""§III-B reproduction: expected under/over-loaded node counts.

Paper: "Given r = 3, n = 512, and m = 128, the expected number of nodes
serving at most 1 chunk is 512 × P(Z ≤ 1) = 11 while the expected number of
nodes serving more than 8 chunks is 512 × (1 − P(Z ≤ 8)) = 6, which implies
that some storage nodes will serve more than 8X the number of chunk
requests as others."

The 512 multiplier is the paper's typo for m = 128 (which indeed gives 11
for the first quantity); we report both multipliers plus Monte-Carlo.
"""

import numpy as np

from repro.analysis import (
    cdf_served_chunks,
    cdf_served_chunks_total_probability,
    empirical_nodes_serving,
    section3b_summary,
)
from repro.viz import paper_vs_measured


def test_sec3b_expected_node_counts(benchmark):
    summary = benchmark(section3b_summary)
    rng = np.random.default_rng(1)
    mc = empirical_nodes_serving(512, 3, 128, trials=400, rng=rng)

    print()
    print(paper_vs_measured([
        ("E[nodes serving <=1 chunk]", "11", f"{summary.nodes_at_most_1:.1f}"),
        ("E[nodes serving >8 chunks]", "6",
         f"{summary.nodes_more_than_8:.1f} (x m) / "
         f"{summary.paper_multiplier_more_than_8:.1f} (x n, paper's multiplier)"),
        ("Monte-Carlo nodes <=1", "-", f"{mc['nodes_at_most_1']:.1f}"),
        ("Monte-Carlo nodes >8", "-", f"{mc['nodes_more_than_8']:.1f}"),
        ("hottest node (chunks, MC)", ">8x the idle nodes", f"{mc['mean_max_served']:.1f}"),
    ], title="§III-B imbalance expectations (n=512, r=3, m=128)"))

    # The paper's 11 is reproduced with the m multiplier.
    assert summary.nodes_at_most_1 == np.float64(128 * cdf_served_chunks(1, 512, 3, 128))
    assert abs(summary.nodes_at_most_1 - 11) < 1.0
    # Monte-Carlo agrees with the closed form.
    assert abs(mc["nodes_at_most_1"] - summary.nodes_at_most_1) < 2.0
    assert abs(mc["nodes_more_than_8"] - summary.nodes_more_than_8) < 2.0
    # The hottest node serves >8x an idle (<=1 chunk) node.
    assert mc["mean_max_served"] > 8


def test_sec3b_total_probability_identity(benchmark):
    """The paper's compound sum equals the thinned Binomial(n, 1/m) exactly."""
    val = benchmark.pedantic(
        lambda: cdf_served_chunks_total_probability(8, 512, 3, 128),
        rounds=3, iterations=1,
    )
    closed = float(cdf_served_chunks(8, 512, 3, 128))
    assert abs(val - closed) < 1e-10
