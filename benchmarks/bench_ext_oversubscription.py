"""Extension bench: Opass on an oversubscribed datacenter fabric.

Marmot is a single switch ("all nodes are connected to the same switch"),
so every remote read pays only NIC and disk contention.  Real datacenters
oversubscribe top-of-rack uplinks; locality-oblivious assignments then
push most traffic across racks and the uplinks become the bottleneck.
Opass's advantage *widens* with oversubscription: its reads never leave
the node, so fabric capacity is irrelevant to it.
"""

from repro.core import (
    ProcessPlacement,
    opass_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.dfs.chunk import MB
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 32
NODES_PER_RACK = 8


def run_matrix(seed: int = 0):
    out = {}
    for uplink in (None, 200 * MB, 50 * MB):
        for use_opass in (False, True):
            spec = ClusterSpec.homogeneous(
                NODES, nodes_per_rack=NODES_PER_RACK, rack_uplink_bw=uplink
            )
            fs = DistributedFileSystem(spec, seed=seed)
            data = single_data_workload(NODES, 10)
            fs.put_dataset(data)
            placement = ProcessPlacement.one_per_node(NODES)
            tasks = tasks_from_dataset(data)
            if use_opass:
                assignment = opass_single_data(fs, data, placement, seed=seed)[0].assignment
            else:
                assignment = rank_interval_assignment(len(tasks), NODES)
            run = ParallelReadRun(
                fs, placement, tasks, StaticSource(assignment), seed=seed
            ).run()
            out[(uplink, use_opass)] = run
    return out


def test_ext_fabric_oversubscription(benchmark):
    out = benchmark.pedantic(lambda: run_matrix(seed=0), rounds=1, iterations=1)

    rows = []
    speedups = {}
    for uplink in (None, 200 * MB, 50 * MB):
        base = out[(uplink, False)]
        opass = out[(uplink, True)]
        label = "non-blocking" if uplink is None else f"{uplink / 1e6:.0f} MB/s uplinks"
        speedups[uplink] = base.io_stats()["avg"] / opass.io_stats()["avg"]
        rows.append((
            label,
            base.io_stats()["avg"], base.makespan,
            opass.io_stats()["avg"], opass.makespan,
            f"{speedups[uplink]:.1f}x",
        ))
    print("\n=== oversubscribed fabric: 32 nodes, 4 racks of 8 ===")
    print(format_table(
        ["fabric", "base avg io", "base makespan",
         "opass avg io", "opass makespan", "avg io speedup"],
        rows,
    ))

    # Opass is insensitive to fabric capacity (its reads are local)...
    opass_avgs = [out[(u, True)].io_stats()["avg"] for u in (None, 200 * MB, 50 * MB)]
    assert max(opass_avgs) - min(opass_avgs) < 0.05
    # ...while the baseline degrades as uplinks shrink, so the win widens.
    assert speedups[50 * MB] > speedups[200 * MB] >= speedups[None] * 0.95
    base_avgs = [out[(u, False)].io_stats()["avg"] for u in (None, 200 * MB, 50 * MB)]
    assert base_avgs[2] > base_avgs[0]
