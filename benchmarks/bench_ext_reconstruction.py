"""Extension bench: data reconstruction for multi-input tasks (§V-C).

The paper stops at: "if a data processing task involves too many inputs,
our method may not work as well and data reconstruction/redistribution may
be needed".  This bench runs that next step — MRAP-style co-location of
each task's inputs on an anchor node — and quantifies the trade: full
locality and flat I/O, bought with real data movement.
"""

from repro.apps import MultiInputComparison
from repro.core import ProcessPlacement
from repro.dfs import ClusterSpec, DistributedFileSystem, reconstruct_for_tasks
from repro.viz import paper_vs_measured
from repro.workloads import multi_input_datasets

NODES = 32
TASKS = 320


def run_comparison(seed: int = 0):
    def fresh():
        fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)
        datasets = multi_input_datasets(TASKS)
        for ds in datasets:
            fs.put_dataset(ds)
        return fs, ProcessPlacement.one_per_node(NODES), datasets

    out = {}
    # Plain Opass (Algorithm 1) on the scattered layout.
    fs, placement, datasets = fresh()
    app = MultiInputComparison(fs, placement, datasets, use_opass=True)
    out["opass"] = (app.execute(seed=seed), 0)
    # Reconstruction first, then Algorithm 1.
    fs, placement, datasets = fresh()
    app = MultiInputComparison(fs, placement, datasets, use_opass=True)
    report = reconstruct_for_tasks(fs, app.tasks)
    app.invalidate_graph()  # the layout changed
    out["reconstructed+opass"] = (app.execute(seed=seed), report.bytes_copied)
    return out


def test_ext_reconstruction_for_multi_input(benchmark):
    out = benchmark.pedantic(lambda: run_comparison(seed=0), rounds=1, iterations=1)
    plain, _ = out["opass"]
    recon, moved = out["reconstructed+opass"]

    print()
    print(paper_vs_measured([
        ("Opass locality (scattered inputs)", "partial", f"{plain.planned_locality:.0%}"),
        ("after reconstruction", "'may be needed' (§V-C)",
         f"{recon.planned_locality:.0%}"),
        ("avg io time", "-",
         f"{plain.result.io_stats()['avg']:.2f} s -> "
         f"{recon.result.io_stats()['avg']:.2f} s"),
        ("data copied for reconstruction", "-", f"{moved / 1e9:.1f} GB"),
        ("total dataset size", "-", f"{TASKS * 60 / 1e3:.1f} GB"),
    ], title="§V-C follow-through: reconstruction + Algorithm 1"))

    assert plain.planned_locality < 0.9
    assert recon.planned_locality > 0.95
    assert recon.result.io_stats()["avg"] < plain.result.io_stats()["avg"]
    # Reconstruction is not free: a sizable fraction of the data moved.
    assert moved > 0.2 * TASKS * 60e6
