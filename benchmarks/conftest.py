"""Shared fixtures for the figure-reproduction benchmarks.

All experiment logic lives in :mod:`repro.experiments`; the bench files
print the paper-style rows (run pytest with ``-s`` to see them) and assert
the paper's shapes.  Simulated runs are deterministic given the seed, so
one benchmark round is representative; heavyweight experiments use
``benchmark.pedantic(..., rounds=1)``.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    SWEEP_SIZES,
    SingleDataComparison,
    run_single_data_comparison,
    run_sweep,
)

__all__ = ["SWEEP_SIZES", "SingleDataComparison", "run_single_data_comparison"]


@pytest.fixture(scope="session")
def sweep_results() -> dict[int, list[SingleDataComparison]]:
    """The Figure-7/8 sweep (3 seeds per size), computed once per session."""
    return run_sweep()
