"""Figure 3 + §III-A reproduction: CDF of locally-read chunks.

Regenerates both the paper's printed percentages (its arithmetic matches
Binomial(n, 1/m), i.e. r = 1) and the corrected Binomial(n, r/m) curves its
formula specifies, and cross-validates the model against Monte-Carlo
placement sampling.
"""

import numpy as np

from repro.analysis import (
    cdf_local_chunks,
    empirical_cdf,
    empirical_local_chunks,
    figure3_series,
    paper_figure3_series,
)
from repro.viz import format_series, paper_vs_measured

PAPER_QUOTES = {64: 0.8109, 128: 0.2143, 256: 0.0164, 512: 0.0046}


def test_fig3_cdf_series(benchmark):
    printed = benchmark(paper_figure3_series)
    corrected = figure3_series()

    print("\n=== Figure 3: CDF of chunks read locally (n=512) ===")
    for row in printed:
        print(format_series(f"m={row.num_nodes:3d} CDF(k=0..20)", row.cdf))

    rows = []
    for row in printed:
        rows.append((
            f"P(X>5) at m={row.num_nodes}",
            f"{PAPER_QUOTES[row.num_nodes]:.2%}",
            f"{row.prob_more_than_5:.2%}",
        ))
    print()
    print(paper_vs_measured(rows, title="§III-A percentages (paper's r=1 arithmetic)"))
    corr = {r.num_nodes: r.prob_more_than_5 for r in corrected}
    print(f"\n(Corrected r=3 values per the paper's own formula: "
          + ", ".join(f"m={m}: {corr[m]:.2%}" for m in (64, 128, 256, 512)) + ")")

    # The printed numbers must match the paper to 4 decimal places
    # (except m=512, a known paper inconsistency).
    got = {r.num_nodes: r.prob_more_than_5 for r in printed}
    for m in (64, 128, 256):
        assert abs(got[m] - PAPER_QUOTES[m]) < 5e-4

    # Monotone decay with cluster size, in both parameterisations.
    vals = [got[m] for m in (64, 128, 256, 512)]
    assert vals == sorted(vals, reverse=True)


def test_fig3_montecarlo_validation(benchmark):
    """Monte-Carlo placement agrees with the closed-form CDF."""
    rng = np.random.default_rng(0)
    samples = benchmark.pedantic(
        lambda: empirical_local_chunks(512, 3, 128, trials=20000, rng=rng),
        rounds=1, iterations=1,
    )
    ks = np.arange(0, 21)
    emp = np.asarray(empirical_cdf(samples, ks))
    model = np.asarray(cdf_local_chunks(ks, 512, 3, 128))
    max_err = float(np.abs(emp - model).max())
    print(f"\nMonte-Carlo vs closed form (m=128, r=3): max CDF error {max_err:.4f}")
    assert max_err < 0.02
