"""Figure 9 reproduction: I/O times of tasks with multiple inputs.

Paper setup: 64 nodes, "each task includes three inputs, one 30 MB data
input, one 20 MB input, and one 10 MB input … belong[ing] to three
different data sets"; 640 chunk files total per dataset group.

Paper findings: the improvement is smaller than the single-data case
because "to execute a task, part of data must be read remotely"; still
"the average time cost on each I/O operation is 2 times less" with Opass.
"""

from repro.experiments import run_multi_data_comparison
from repro.viz import format_series, paper_vs_measured

NODES = 64
TASKS = 640


def test_fig9_multi_data_io_times(benchmark):
    comparison = benchmark.pedantic(
        lambda: run_multi_data_comparison(num_nodes=NODES, num_tasks=TASKS, seed=0),
        rounds=1, iterations=1,
    )
    comparisons = [comparison] + [
        run_multi_data_comparison(num_nodes=NODES, num_tasks=TASKS, seed=s)
        for s in (1, 2)
    ]
    base, opass = comparison.base, comparison.opass
    b, o = base.result.io_stats(), opass.result.io_stats()
    import numpy as np

    ratio = float(np.mean([c.io_improvement for c in comparisons]))

    print("\n=== Figure 9: I/O times, multi-input tasks on 64 nodes ===")
    print(format_series("w/o Opass ", base.result.durations(), max_items=16))
    print(format_series("with Opass", opass.result.durations(), max_items=16))
    print()
    print(paper_vs_measured([
        ("avg I/O improvement (3 seeds)", "2x", f"{ratio:.1f}x"),
        ("Opass locality", "partial (inputs scattered)",
         f"{opass.result.locality_fraction:.0%}"),
        ("baseline locality", "-", f"{base.result.locality_fraction:.0%}"),
        ("improvement vs single-data", "smaller than Fig 7",
         f"{ratio:.1f}x here vs ~3-4x single-data"),
    ], title="Figure 9 summary"))

    # Shape: Opass wins, by a smaller factor than single-data; locality is
    # improved but necessarily partial.
    assert ratio > 1.25
    assert ratio < 3.0
    assert base.result.locality_fraction < 0.15
    assert 0.3 < opass.result.locality_fraction < 0.95
    # Compare the bulk of the distributions, not the single worst read
    # (one unlucky remote straggler can land on either side).
    import numpy as np

    assert np.percentile(opass.result.durations(), 90) < np.percentile(
        base.result.durations(), 90
    )
