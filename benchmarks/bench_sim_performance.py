"""Substrate health: simulator wall-clock and event throughput.

Not a paper figure — a maintainer's bench.  The fluid simulator is the
substrate every experiment stands on; this tracks its cost at and beyond
Fig-7 scales so a regression in the incremental allocator or the
completion heap (see ARCHITECTURE.md §1) is caught here rather than as a
mysteriously slow benchmark suite.

Beyond the printed table the bench emits ``BENCH_sim.json`` at the repo
root: one row per cluster size with events, wall seconds, event
throughput and the allocator's solve counters, so CI can archive the
trajectory and a regression shows up as a diff.
"""

import gc
import json
import time
from pathlib import Path

from repro.core import ProcessPlacement, rank_interval_assignment, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import format_table
from repro.workloads import single_data_workload

SCALES = (32, 64, 128, 256, 512)

#: The simulation is deterministic, so run-to-run wall variance is pure
#: scheduler/frequency noise — report the fastest of a few repeats.
REPEATS = 3

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def _run_once(m: int, seed: int):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
    data = single_data_workload(m, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(m)
    tasks = tasks_from_dataset(data)
    run = ParallelReadRun(
        fs, placement, tasks,
        StaticSource(rank_interval_assignment(len(tasks), m)), seed=seed,
    )
    # Keep runs independent: don't let garbage from the previous run
    # trigger a collection pause inside this run's timed region.
    gc.collect()
    t0 = time.perf_counter()
    result = run.run()
    wall = time.perf_counter() - t0
    assert result.tasks_completed == len(tasks)
    perf = run.sim.perf
    return {
        "nodes": m,
        "reads": len(tasks),
        "events": run.sim.events_processed,
        "wall_s": wall,
        "events_per_second": run.sim.events_processed / wall,
        "solves": perf.solves,
        "solve_iterations": perf.solve_iterations,
        "heap_rebuilds": perf.heap_rebuilds,
        "solve_wall_s": perf.solve_wall,
        "settle_wall_s": perf.settle_wall,
    }


def run_scaling(seed: int = 0, repeats: int = REPEATS):
    rows = []
    for m in SCALES:
        best = min(
            (_run_once(m, seed) for _ in range(repeats)),
            key=lambda r: r["wall_s"],
        )
        rows.append(best)
    return rows


def test_sim_event_throughput(benchmark):
    rows = benchmark.pedantic(lambda: run_scaling(seed=0), rounds=1, iterations=1)
    print("\n=== simulator throughput (baseline runs, max contention) ===")
    print(format_table(
        ["nodes", "reads", "events", "wall (ms)", "events/s", "solves", "iters"],
        [
            (r["nodes"], r["reads"], r["events"], r["wall_s"] * 1000,
             r["events_per_second"], r["solves"], r["solve_iterations"])
            for r in rows
        ],
        float_fmt="{:.0f}",
    ))
    BENCH_JSON.write_text(json.dumps({"scales": rows}, indent=1) + "\n")
    for r in rows:
        # Every scale — including the 512-node row — must simulate within
        # the 30 s budget at useful throughput.
        assert r["wall_s"] < 30.0
        assert r["events_per_second"] > 100
        # Events scale roughly with reads (≈2 events per read + slack).
        assert r["events"] < r["reads"] * 6
        # One re-solve per flow start + one per finish, plus slack: the
        # allocator must stay event-driven, never per-timestep.
        assert r["solves"] <= r["events"] + 2
