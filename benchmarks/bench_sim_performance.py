"""Substrate health: simulator wall-clock and event throughput.

Not a paper figure — a maintainer's bench.  The fluid simulator is the
substrate every experiment stands on; this tracks its cost at and beyond
Fig-7 scales so a regression in the component allocator or the lazy
completion heap (see ARCHITECTURE.md §1) is caught here rather than as a
mysteriously slow benchmark suite.

Beyond the printed table the bench emits ``BENCH_sim.json`` at the repo
root: one row per cluster size with events, wall seconds, event
throughput, per-phase wall clocks and the allocator's solve/component/
heap counters, so CI can archive the trajectory and a regression shows
up as a diff.

Run standalone with a regression gate against the committed file::

    PYTHONPATH=src python benchmarks/bench_sim_performance.py \
        --scales 128,512 --check

``--check`` compares each measured scale's ``events_per_second`` against
the committed ``BENCH_sim.json`` and fails (exit 1) below
``REGRESSION_FLOOR`` (0.7×) of the committed number, and additionally
gates each scale's solve-wall fraction *and* event-loop-residual
fraction of the run (the events/s ratio alone can hide one phase
growing superlinearly while cheaper phases shrink).  When the sweep
measures the 512-node anchor together with larger scales, the
cross-scale collapse gate also requires each larger scale to hold its
``COLLAPSE_FLOORS`` fraction (0.8× at 2048) of the anchor's events/s —
the PR 9 regression contract for the 2048/4096-node throughput
collapse.
Without ``--check`` the measured rows are merged into the file.
``--extended`` appends the 2048/4096-node artifact-only scales.
CI runs the gated form on every push (see .github/workflows/ci.yml,
job ``bench-regression``).

``--parallel on`` runs the same workload with component solves routed
through a force-dispatched ``ComponentSolvePool`` (pooled rows are never
merged into the committed serial baseline), and ``--trace-out`` dumps
the full event trace per scale so CI's ``bench-parallel`` legs can
assert the pooled and serial runs are byte-identical.

``--fastforward off`` disables the engine's fused cascade fast-forward
loop and runs the general per-event dispatcher instead; CI's
``bench-fastforward-identity`` job runs both forms with ``--trace-out``
and diffs the traces byte-for-byte (the fast-forward identity
contract).  'off' rows are never merged into the committed baseline.
"""

import argparse
import gc
import json
import sys
import time
from pathlib import Path

from repro.core import ProcessPlacement, rank_interval_assignment, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.simulate import (
    ParallelReadRun,
    Simulation,
    StaticSource,
    cluster_resources,
)
from repro.viz import format_table
from repro.workloads import single_data_workload

SCALES = (32, 64, 128, 256, 512, 1024)

#: The simulation is deterministic, so run-to-run wall variance is pure
#: scheduler/frequency noise — report the fastest of a few repeats.
REPEATS = 3

#: ``--check`` fails when a scale's measured events_per_second drops
#: below this fraction of the committed BENCH_sim.json number.  Loose
#: enough for shared-runner noise, tight enough to catch an accidental
#: return to per-epoch prediction rebuilds or whole-network solves.
REGRESSION_FLOOR = 0.7

#: ``--check`` also gates each scale's solve-time *fraction* of the run
#: (solve_wall_s / wall_s).  The events/s ratio alone hides a scale
#: inversion where the solver grows superlinearly while cheaper phases
#: shrink; the fraction gate catches the solver reclaiming the run.
#: The committed fraction may be exceeded by this multiple plus a small
#: absolute slack (both phases jitter on shared runners).
SOLVE_FRACTION_CEIL = 1.25
SOLVE_FRACTION_SLACK = 0.05

#: ``--check`` gates the engine-overhead fraction the same way: the
#: ``event_loop_wall_s`` residual (run wall minus the instrumented
#: solve/settle/scan/pool phases) divided by ``wall_s``.  This is the
#: per-event Python bookkeeping PR 9's array engine exists to shrink;
#: the gate keeps it from quietly regrowing behind a passing events/s
#: ratio.  Committed rows predating the counter skip the gate.
EVENT_LOOP_FRACTION_CEIL = 1.25
EVENT_LOOP_FRACTION_SLACK = 0.10

#: Cross-scale collapse gate: when a ``--check`` sweep measures both the
#: 512-node anchor and a larger scale, the larger scale's events/s must
#: stay within the scale's floor fraction of the 512-node rate.  This is
#: the PR 9 regression contract — before event coalescing and the
#: pessimistic retire-time sweep, 2048/4096-node runs collapsed to
#: ~0.55x of the 512-node throughput.  2048 holds 0.8x; 4096 still pays
#: the O(n) settle pass and the metadata working set outgrowing cache,
#: so its floor records the measured frontier rather than the target.
COLLAPSE_FLOORS = {2048: 0.8, 4096: 0.65}
COLLAPSE_ANCHOR = 512

#: Extra sweep points for the scaling-curve artifact.  Not part of CI's
#: quick gate (they alone take minutes); `--extended` appends them.
EXTENDED_SCALES = (2048, 4096)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def _run_once(
    m: int, seed: int, pool=None, want_trace: bool = False,
    fastforward: bool = True,
):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
    data = single_data_workload(m, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(m)
    tasks = tasks_from_dataset(data)
    sim = None
    if pool is not None or not fastforward:
        sim = Simulation(
            allocator="component", parallel=pool, fastforward=fastforward
        )
        sim.add_resources(cluster_resources(fs.spec))
    run = ParallelReadRun(
        fs, placement, tasks,
        StaticSource(rank_interval_assignment(len(tasks), m)), seed=seed,
        sim=sim,
    )
    # Keep runs independent: don't let garbage from the previous run
    # trigger a collection pause inside this run's timed region.
    gc.collect()
    t0 = time.perf_counter()
    result = run.run()
    wall = time.perf_counter() - t0
    assert result.tasks_completed == len(tasks)
    snap = run.sim.perf.snapshot()
    trace = None
    if want_trace:
        trace = {
            "makespan": result.makespan,
            "records": [
                [r.seq, r.rank, r.task_id, r.chunk.file, r.chunk.index,
                 r.server_node, r.reader_node, r.local, r.issue_time,
                 r.end_time]
                for r in result.records
            ],
        }
    return {
        **({"trace": trace} if want_trace else {}),
        "nodes": m,
        "reads": len(tasks),
        "events": run.sim.events_processed,
        "wall_s": wall,
        "events_per_second": run.sim.events_processed / wall,
        "solves": snap["solves"],
        "solve_iterations": snap["solve_iterations"],
        "prediction_rebuilds": snap["prediction_rebuilds"],
        "heap_pushes": snap["heap_pushes"],
        "stale_pops": snap["stale_pops"],
        "components": snap["components"],
        "component_solves": snap["component_solves"],
        "component_size_max": snap["component_size_max"],
        "component_size_mean": snap["component_size_mean"],
        "settles": snap["settles"],
        "coalesced_events": snap["coalesced_events"],
        "vectorized_solves": snap["vectorized_solves"],
        "parallel_solves": snap["parallel_solves"],
        "memo_hits": snap["memo_hits"],
        "fastforward_cascades": snap["fastforward_cascades"],
        "cascade_events": snap["cascade_events"],
        "solve_wall_s": snap["solve_wall"],
        "settle_wall_s": snap["settle_wall"],
        "scan_wall_s": snap["scan_wall"],
        "pool_dispatch_wall_s": snap["pool_dispatch_wall"],
        "run_wall_s": snap["run_wall"],
        "event_loop_wall_s": snap["event_loop_wall"],
    }


def run_scaling(
    seed: int = 0, repeats: int = REPEATS, scales=SCALES, pool=None,
    want_trace: bool = False, fastforward: bool = True,
):
    rows = []
    for m in scales:
        best = min(
            (_run_once(m, seed, pool=pool, want_trace=want_trace,
                       fastforward=fastforward)
             for _ in range(repeats)),
            key=lambda r: r["wall_s"],
        )
        rows.append(best)
    return rows


def print_rows(rows):
    print("\n=== simulator throughput (baseline runs, max contention) ===")
    print(format_table(
        ["nodes", "reads", "events", "wall (ms)", "events/s", "us/ev",
         "solve%", "solves", "memo", "casc", "iters", "comps", "sz_max",
         "pushes", "stale"],
        [
            (r["nodes"], r["reads"], r["events"], r["wall_s"] * 1000,
             r["events_per_second"],
             "{:.1f}".format(r["wall_s"] / r["events"] * 1e6),
             "{:.3f}".format(r["solve_wall_s"] / r["wall_s"]),
             r["solves"], r.get("memo_hits", 0),
             r.get("fastforward_cascades", 0), r["solve_iterations"],
             r["components"], r["component_size_max"], r["heap_pushes"],
             r["stale_pops"])
            for r in rows
        ],
        float_fmt="{:.0f}",
    ))


def assert_row_health(r):
    """Structural invariants every scale must satisfy."""
    # Every scale — including the 1024-node row — must simulate within
    # the 60 s budget at useful throughput.
    assert r["wall_s"] < 60.0
    assert r["events_per_second"] > 100
    # Events scale roughly with reads (≈2 events per read + slack).
    assert r["events"] < r["reads"] * 6
    # One re-solve per flow start + one per finish, plus slack: the
    # allocator must stay event-driven, never per-timestep.
    assert r["solves"] <= r["events"] + 2
    # The lazy heap must hold: no full prediction rebuilds, ever.
    assert r["prediction_rebuilds"] < r["solves"]


def test_sim_event_throughput(benchmark):
    rows = benchmark.pedantic(lambda: run_scaling(seed=0), rounds=1, iterations=1)
    print_rows(rows)
    BENCH_JSON.write_text(json.dumps({"scales": rows}, indent=1) + "\n")
    for r in rows:
        assert_row_health(r)
        if r["nodes"] >= 512:
            assert r["events_per_second"] > 10_000


def check_regression(rows, committed_path=BENCH_JSON, floor=REGRESSION_FLOOR):
    """Compare measured rows against the committed bench file.

    Returns a list of failure strings (empty = pass)."""
    committed = {
        r["nodes"]: r for r in json.loads(committed_path.read_text())["scales"]
    }
    failures = []
    for r in rows:
        base = committed.get(r["nodes"])
        if base is None:
            print(f"nodes={r['nodes']}: no committed baseline, skipping gate")
            continue
        ratio = r["events_per_second"] / base["events_per_second"]
        verdict = "OK" if ratio >= floor else "REGRESSION"
        print(
            f"nodes={r['nodes']}: {r['events_per_second']:.0f} ev/s vs "
            f"committed {base['events_per_second']:.0f} "
            f"({ratio:.2f}x, floor {floor:.2f}x) {verdict}"
        )
        if ratio < floor:
            failures.append(
                f"nodes={r['nodes']} regressed to {ratio:.2f}x of committed "
                f"events_per_second"
            )
        # Per-scale solve-fraction gate: the solver must not quietly
        # reclaim the run while overall throughput stays inside the
        # events/s floor.
        if "solve_wall_s" in base and base.get("wall_s"):
            base_frac = base["solve_wall_s"] / base["wall_s"]
            frac = r["solve_wall_s"] / r["wall_s"]
            allowed = base_frac * SOLVE_FRACTION_CEIL + SOLVE_FRACTION_SLACK
            fverdict = "OK" if frac <= allowed else "REGRESSION"
            print(
                f"nodes={r['nodes']}: solve fraction {frac:.3f} vs committed "
                f"{base_frac:.3f} (allowed {allowed:.3f}) {fverdict}"
            )
            if frac > allowed:
                failures.append(
                    f"nodes={r['nodes']} solve fraction grew to {frac:.3f} "
                    f"(committed {base_frac:.3f}, allowed {allowed:.3f})"
                )
        # Engine-overhead gate, same shape: the event-loop residual must
        # not quietly reclaim the run either.  Rows committed before the
        # counter existed have no baseline fraction — skip, don't guess.
        if "event_loop_wall_s" in base and base.get("wall_s"):
            base_frac = base["event_loop_wall_s"] / base["wall_s"]
            frac = r["event_loop_wall_s"] / r["wall_s"]
            allowed = (
                base_frac * EVENT_LOOP_FRACTION_CEIL + EVENT_LOOP_FRACTION_SLACK
            )
            fverdict = "OK" if frac <= allowed else "REGRESSION"
            print(
                f"nodes={r['nodes']}: event-loop fraction {frac:.3f} vs "
                f"committed {base_frac:.3f} (allowed {allowed:.3f}) {fverdict}"
            )
            if frac > allowed:
                failures.append(
                    f"nodes={r['nodes']} event-loop fraction grew to "
                    f"{frac:.3f} (committed {base_frac:.3f}, allowed "
                    f"{allowed:.3f})"
                )
    # Cross-scale collapse gate: measured-vs-measured, so shared-runner
    # noise hits both sides of the ratio alike.
    by_nodes = {r["nodes"]: r for r in rows}
    anchor = by_nodes.get(COLLAPSE_ANCHOR)
    if anchor is not None:
        for m, r in sorted(by_nodes.items()):
            floor_m = COLLAPSE_FLOORS.get(m)
            if floor_m is None or m <= COLLAPSE_ANCHOR:
                continue
            ratio = r["events_per_second"] / anchor["events_per_second"]
            verdict = "OK" if ratio >= floor_m else "COLLAPSE"
            print(
                f"nodes={m}: {ratio:.2f}x of the {COLLAPSE_ANCHOR}-node "
                f"events/s (floor {floor_m:.2f}x) {verdict}"
            )
            if ratio < floor_m:
                failures.append(
                    f"nodes={m} collapsed to {ratio:.2f}x of the "
                    f"{COLLAPSE_ANCHOR}-node events_per_second "
                    f"(floor {floor_m:.2f}x)"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="simulator throughput bench / regression gate"
    )
    parser.add_argument(
        "--scales", default=",".join(str(s) for s in SCALES),
        help="comma-separated cluster sizes (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS,
        help="runs per scale, fastest kept (default: %(default)s)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="where to write the measured rows (default: BENCH_sim.json "
             "when merging; with --check, only written if given)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate against the committed BENCH_sim.json instead of "
             "merging into it; exit 1 on regression",
    )
    parser.add_argument(
        "--extended", action="store_true",
        help=f"also sweep the artifact-only scales {EXTENDED_SCALES} "
             "(kept out of CI's quick gate)",
    )
    parser.add_argument(
        "--parallel", choices=("off", "on"), default="off",
        help="'on' routes component solves through a ComponentSolvePool "
             "with forced dispatch (min_flows=0); traces must match the "
             "serial run byte-for-byte (default: %(default)s)",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="write the full event trace (records + makespan per scale) "
             "to this JSON file for cross-leg identity checks",
    )
    parser.add_argument(
        "--fastforward", choices=("on", "off"), default="on",
        help="'off' disables the engine's fused cascade fast-forward "
             "loop (the general per-event dispatcher runs instead); "
             "traces must match the fast-forward run byte-for-byte, and "
             "'off' rows are never merged into the committed baseline "
             "(default: %(default)s)",
    )
    args = parser.parse_args(argv)
    scales = tuple(int(s) for s in args.scales.split(","))
    if args.extended:
        scales = scales + tuple(s for s in EXTENDED_SCALES if s not in scales)
    pool = None
    if args.parallel == "on":
        from repro.parallel import ComponentSolvePool

        pool = ComponentSolvePool(min_flows=0)
    try:
        rows = run_scaling(
            seed=0, repeats=args.repeats, scales=scales, pool=pool,
            want_trace=args.trace_out is not None,
            fastforward=args.fastforward == "on",
        )
    finally:
        if pool is not None:
            pool.close()
    if args.trace_out is not None:
        traces = {str(r["nodes"]): r.pop("trace") for r in rows}
        args.trace_out.write_text(
            json.dumps(traces, separators=(",", ":")) + "\n"
        )
        print(f"wrote {args.trace_out}")
    print_rows(rows)
    for r in rows:
        assert_row_health(r)
        if pool is not None:
            # Forced dispatch: every scale must actually exercise the pool.
            assert r["parallel_solves"] > 0, r
        if args.fastforward == "off":
            # The general dispatcher ran: no cascade runs may be counted.
            assert r["fastforward_cascades"] == 0, r
    if (args.parallel == "on" or args.fastforward == "off") and not args.check:
        # Pooled / fast-forward-off rows never merge into the committed
        # fast-forward serial baseline.
        if args.out is not None:
            args.out.write_text(json.dumps({"scales": rows}, indent=1) + "\n")
            print(f"wrote {args.out}")
        return 0
    if args.check:
        failures = check_regression(rows)
        if args.out is not None:
            args.out.write_text(json.dumps({"scales": rows}, indent=1) + "\n")
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1 if failures else 0
    # Merge: measured scales replace committed ones, others are kept.
    out = args.out if args.out is not None else BENCH_JSON
    merged = {}
    if BENCH_JSON.exists():
        merged = {
            r["nodes"]: r for r in json.loads(BENCH_JSON.read_text())["scales"]
        }
    merged.update({r["nodes"]: r for r in rows})
    out.write_text(
        json.dumps(
            {"scales": [merged[k] for k in sorted(merged)]}, indent=1
        ) + "\n"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
