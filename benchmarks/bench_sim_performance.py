"""Substrate health: simulator wall-clock and event throughput.

Not a paper figure — a maintainer's bench.  The fluid simulator is the
substrate every experiment stands on; this tracks its cost at Fig-7
scales so a regression in the water-filling hot loop (see
ARCHITECTURE.md §1) is caught here rather than as a mysteriously slow
benchmark suite.
"""

import time

from repro.core import ProcessPlacement, rank_interval_assignment, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import format_table
from repro.workloads import single_data_workload


def run_scaling(seed: int = 0):
    rows = []
    for m in (32, 64, 128):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
        data = single_data_workload(m, 10)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(m)
        tasks = tasks_from_dataset(data)
        run = ParallelReadRun(
            fs, placement, tasks,
            StaticSource(rank_interval_assignment(len(tasks), m)), seed=seed,
        )
        t0 = time.perf_counter()
        result = run.run()
        wall = time.perf_counter() - t0
        rows.append((
            m, len(tasks), run.sim.events_processed, wall * 1000,
            run.sim.events_processed / wall,
        ))
        assert result.tasks_completed == len(tasks)
    return rows


def test_sim_event_throughput(benchmark):
    rows = benchmark.pedantic(lambda: run_scaling(seed=0), rounds=1, iterations=1)
    print("\n=== simulator throughput (baseline runs, max contention) ===")
    print(format_table(
        ["nodes", "reads", "events", "wall (ms)", "events/s"],
        rows, float_fmt="{:.0f}",
    ))
    for m, reads, events, wall_ms, throughput in rows:
        # The 128-node Marmot-scale baseline must simulate within seconds.
        assert wall_ms < 30_000
        assert throughput > 100
    # Events scale roughly with reads (≈2 events per read + slack).
    assert rows[-1][2] < rows[-1][1] * 6
