"""Ablation: infrastructure-side replica selection vs Opass.

Could HDFS fix the imbalance by itself with a smarter remote-replica
choice?  This ablation runs the locality-oblivious baseline assignment
under three serving policies — uniform random (stock HDFS), least-loaded,
and adversarial first-listed — and compares against Opass.  Least-loaded
serving flattens the *balance* but cannot create *locality*: reads stay
remote, so average I/O time barely moves.  That separation is the paper's
core argument for fixing the application side.
"""

from repro.core import (
    ProcessPlacement,
    opass_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import (
    ClusterSpec,
    DistributedFileSystem,
    FirstListed,
    LeastLoaded,
    RandomRemote,
)
from repro.metrics import ServeMonitor, jains_fairness
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 32


def run_matrix(seed: int = 0):
    out = {}
    variants = [
        ("random remote (stock HDFS)", RandomRemote(), False),
        ("least-loaded remote", LeastLoaded(), False),
        ("first-listed remote", FirstListed(), False),
        ("Opass (random remote)", RandomRemote(), True),
    ]
    for name, policy, use_opass in variants:
        fs = DistributedFileSystem(
            ClusterSpec.homogeneous(NODES), replica_choice=policy, seed=seed
        )
        data = single_data_workload(NODES, 10)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = tasks_from_dataset(data)
        if use_opass:
            assignment = opass_single_data(fs, data, placement, seed=seed)[0].assignment
        else:
            assignment = rank_interval_assignment(len(tasks), NODES)
        monitor = ServeMonitor(fs)
        monitor.start()
        run = ParallelReadRun(
            fs, placement, tasks, StaticSource(assignment), seed=seed
        ).run()
        out[name] = (run, monitor.served_mb_array())
    return out


def test_ablation_remote_replica_policy(benchmark):
    out = benchmark.pedantic(lambda: run_matrix(seed=0), rounds=1, iterations=1)

    rows = []
    for name, (run, served) in out.items():
        rows.append((
            name,
            run.io_stats()["avg"],
            f"{run.locality_fraction:.0%}",
            f"{jains_fairness(served):.3f}",
            run.makespan,
        ))
    print("\n=== ablation: remote replica selection policy (32 nodes) ===")
    print(format_table(
        ["serving policy", "avg io (s)", "locality", "serve fairness", "makespan (s)"],
        rows,
    ))

    random_run, random_served = out["random remote (stock HDFS)"]
    ll_run, ll_served = out["least-loaded remote"]
    fl_run, fl_served = out["first-listed remote"]
    opass_run, _ = out["Opass (random remote)"]

    # Least-loaded fixes balance but not locality/time.
    assert jains_fairness(ll_served) > jains_fairness(random_served)
    assert ll_run.locality_fraction < 0.25
    assert ll_run.io_stats()["avg"] > 1.8  # reads still remote & capped
    # First-listed is strictly worse than random on balance.
    assert jains_fairness(fl_served) < jains_fairness(random_served)
    # Only Opass gets local reads — and the big time win.
    assert opass_run.locality_fraction > 0.95
    assert opass_run.io_stats()["avg"] < 0.6 * ll_run.io_stats()["avg"]
