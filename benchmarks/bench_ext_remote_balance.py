"""Extension bench: balanced remote serving (Opass+).

The paper's fallback assigns unmatched tasks randomly and lets HDFS pick
remote replicas uniformly at random — §III-B shows that random serving is
itself imbalanced.  Opass+ plans the remote reads with a convex-cost
min-cost flow so the serving load of the *unavoidably remote* traffic is
as flat as the replica placement allows.

Scenario: a skewed layout (half the nodes empty, as after node addition),
where even the optimal matching leaves ~50 % of reads remote.
"""

import numpy as np

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    optimize_single_data,
    plan_remote_reads,
    tasks_from_dataset,
)
from repro.core.remote_balance import PlannedReplicaChoice
from repro.dfs import ClusterSpec, DistributedFileSystem, SkewedPlacement
from repro.metrics import ServeMonitor, jains_fairness
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import paper_vs_measured
from repro.workloads import single_data_workload

NODES = 32


def _build(seed: int):
    fs = DistributedFileSystem(
        ClusterSpec.homogeneous(NODES),
        placement=SkewedPlacement(excluded_fraction=0.5),
        seed=seed,
    )
    data = single_data_workload(NODES, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(NODES)
    tasks = tasks_from_dataset(data)
    graph = graph_from_filesystem(fs, tasks, placement)
    matched = optimize_single_data(graph, seed=seed)
    return fs, placement, tasks, graph, matched


def run_comparison(seed: int = 0):
    results = {}
    for variant in ("random_remote", "planned_remote"):
        fs, placement, tasks, graph, matched = _build(seed)
        if variant == "planned_remote":
            owner = matched.assignment.process_of()
            remote_chunks = []
            for t in tasks:
                rank = owner[t.task_id]
                for cidx in t.inputs:
                    replicas = fs.namenode.locations_of(cidx)
                    if placement.node_of(rank) not in replicas:
                        remote_chunks.append(cidx)
            plan = plan_remote_reads(remote_chunks, fs.layout_snapshot())
            fs.replica_choice = PlannedReplicaChoice(plan)
        monitor = ServeMonitor(fs)
        monitor.start()
        run = ParallelReadRun(
            fs, placement, tasks, StaticSource(matched.assignment), seed=seed
        ).run()
        results[variant] = (run, monitor.served_mb_array())
    return results


def test_ext_remote_balance(benchmark):
    results = benchmark.pedantic(lambda: run_comparison(seed=0), rounds=1, iterations=1)
    rand_run, rand_served = results["random_remote"]
    plan_run, plan_served = results["planned_remote"]

    # Only nodes that actually hold data can serve; compare their loads.
    serving_rand = rand_served[rand_served > 0]
    serving_plan = plan_served[plan_served > 0]

    print()
    print(paper_vs_measured([
        ("remote fraction (skewed layout)", "-",
         f"{1 - rand_run.locality_fraction:.0%}"),
        ("max MB served, random remote", "-", f"{serving_rand.max():.0f}"),
        ("max MB served, planned remote", "-", f"{serving_plan.max():.0f}"),
        ("serving Jain fairness", "-",
         f"{jains_fairness(serving_rand):.3f} -> {jains_fairness(serving_plan):.3f}"),
        ("avg io time", "-",
         f"{rand_run.io_stats()['avg']:.2f} s -> {plan_run.io_stats()['avg']:.2f} s"),
        ("makespan", "-",
         f"{rand_run.makespan:.1f} s -> {plan_run.makespan:.1f} s"),
    ], title="Opass+ balanced remote serving (skewed layout, 32 nodes)"))

    # Same work either way.
    assert rand_run.tasks_completed == plan_run.tasks_completed == 320
    # Remote reads exist (the scenario's premise).
    assert rand_run.locality_fraction < 0.8
    # Planning flattens the serving profile and does not hurt I/O time.
    assert serving_plan.max() <= serving_rand.max()
    assert jains_fairness(serving_plan) >= jains_fairness(serving_rand)
    assert plan_run.io_stats()["avg"] <= rand_run.io_stats()["avg"] * 1.05
