"""Extension bench: predicting the hottest node analytically.

The §III-B model bounds one node's load; the figures' headline numbers are
about the hottest of m nodes.  The extreme-value extension P(max ≤ k) ≈
P(Z ≤ k)^m predicts Figure 1's ">6 chunks" and Figure 8(c)'s hottest-node
load from first principles, matching both Monte-Carlo and the full
simulator.
"""

import numpy as np

from repro.analysis import empirical_max_served, expected_max_served, hotspot_summary
from repro.viz import paper_vs_measured

from conftest import run_single_data_comparison


def test_ext_hotspot_prediction(benchmark, sweep_results):
    fig1 = benchmark(lambda: hotspot_summary(128, 3, 64))
    fig8 = hotspot_summary(640, 3, 64)
    rng = np.random.default_rng(0)
    mc_fig8 = empirical_max_served(640, 3, 64, trials=200, rng=rng)

    # The full simulator's hottest node at the Fig 8(c) configuration.
    sim_max_mb = max(r.base_served_mb.max() for r in sweep_results[64])

    print()
    print(paper_vs_measured([
        ("Fig 1 hottest node (ideal 2)", "> 6 chunks",
         f"E[max] = {fig1.expected_max:.1f} chunks"),
        ("Fig 8(c) hottest node (ideal 640 MB)", "> 1400 MB",
         f"E[max] = {fig8.expected_max * 64:.0f} MB (model), "
         f"{mc_fig8 * 64:.0f} MB (Monte-Carlo), "
         f"{sim_max_mb:.0f} MB (simulator)"),
        ("overload factor at 64 nodes", "-", f"{fig8.overload_factor:.1f}x ideal"),
    ], title="extreme-value hotspot prediction"))

    # Model ≈ Monte-Carlo ≈ simulator, all in the paper's regime.
    assert fig1.expected_max > 5.0
    assert abs(mc_fig8 - fig8.expected_max) < 1.5
    assert abs(sim_max_mb - fig8.expected_max * 64) < 350
    assert fig8.overload_factor > 1.5
