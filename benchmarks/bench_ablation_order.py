"""Ablation: Algorithm 1's unspecified process-selection order.

The paper writes "while ∃ p_k : |T(p_x)| < n/m" without saying *which*
deficient process proposes next.  This ablation resolves the
nondeterminism three ways — round-robin (our default, matching Figure
6(b)'s narration), stack (most-recently-deficient first) and seeded
random — and measures the outcome quality.  The steal rule, not the visit
order, drives the result: local-byte totals agree within a few percent.

A second probe quantifies the greedy's optimality gap on *single-input*
tasks, where the flow matching is provably optimal: Algorithm 1 run on
the same instances recovers almost all of the optimum — evidence the
paper's two algorithms are consistent where their domains overlap.
"""

import numpy as np

from repro.core import (
    ProcessPlacement,
    fully_local_tasks,
    graph_from_filesystem,
    locality_fraction,
    optimize_multi_data,
    optimize_single_data,
    tasks_from_dataset,
    tasks_from_datasets,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.viz import format_table
from repro.workloads import multi_input_datasets

NODES = 32


def run_order_sweep(seed: int = 0):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)
    datasets = multi_input_datasets(NODES * 10)
    for ds in datasets:
        fs.put_dataset(ds)
    placement = ProcessPlacement.one_per_node(NODES)
    graph = graph_from_filesystem(fs, tasks_from_datasets(datasets), placement)
    rows = []
    for order in ("round_robin", "stack", "random"):
        result = optimize_multi_data(graph, order=order, seed=seed)
        rows.append((
            order,
            locality_fraction(result.assignment, graph),
            result.reassignments,
            result.proposals,
        ))
    return rows


def run_greedy_gap(seed: int = 0):
    """Algorithm 1 vs the optimal flow matching on single-input tasks."""
    gaps = []
    for s in range(seed, seed + 5):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=s)
        data = uniform_dataset(f"g{s}", NODES * 10)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(NODES)
        graph = graph_from_filesystem(fs, tasks_from_dataset(data), placement)
        optimal = optimize_single_data(graph, seed=s)
        greedy = optimize_multi_data(graph)
        opt_local = len(fully_local_tasks(optimal.assignment, graph))
        greedy_local = len(fully_local_tasks(greedy.assignment, graph))
        gaps.append((opt_local, greedy_local))
    return gaps


def test_ablation_selection_order(benchmark):
    rows = benchmark.pedantic(lambda: run_order_sweep(seed=0), rounds=1, iterations=1)
    print("\n=== Algorithm 1 selection-order ablation (multi-input, 32 nodes) ===")
    print(format_table(
        ["order", "locality", "reassignments", "proposals"],
        rows, float_fmt="{:.3f}",
    ))
    localities = [r[1] for r in rows]
    # Order-insensitive quality (within a few percent of each other).
    assert max(localities) - min(localities) < 0.05
    # Every order produces a complete, valid assignment (validated inside).
    assert all(r[3] >= NODES * 10 for r in rows)


def test_ablation_greedy_vs_optimal_gap(benchmark):
    gaps = benchmark.pedantic(lambda: run_greedy_gap(seed=0), rounds=1, iterations=1)
    rows = [
        (i, opt, greedy, f"{greedy / opt:.1%}")
        for i, (opt, greedy) in enumerate(gaps)
    ]
    print("\n=== Algorithm 1 vs optimal flow matching (single-input tasks) ===")
    print(format_table(
        ["seed", "optimal local tasks", "greedy local tasks", "recovered"],
        rows,
    ))
    for opt, greedy in gaps:
        # The flow matching is optimal by construction; the greedy never
        # beats it.  Measured: Algorithm 1 recovers 91-95% of the optimum
        # on these instances — the price of no augmenting paths (a steal
        # moves one task; it cannot rotate a chain of assignments).  This
        # quantifies why the paper uses the flow formulation for
        # single-data access and reserves the greedy for multi-input tasks
        # where flow capacities cannot express partial co-location.
        assert greedy <= opt
        assert greedy >= 0.88 * opt
