"""Figure 11 reproduction: dynamic (master/worker) data access.

Paper setup: "we allow a master process to control the task assignments
with an architecture similar to that of mpiBLAST … via a random policy to
simulate the irregular computation patterns" on 64 nodes / 640 chunks.

Paper finding: results mirror the equal-assignment test; "the average time
on each I/O operation is 2.7 times less than with use of the default
dynamic assignment method".
"""

from repro.experiments import run_dynamic_comparison
from repro.viz import format_series, paper_vs_measured

NODES = 64
FRAGMENTS = 640


def test_fig11_dynamic_io_times(benchmark):
    comparison = benchmark.pedantic(
        lambda: run_dynamic_comparison(num_nodes=NODES, num_fragments=FRAGMENTS, seed=0),
        rounds=1, iterations=1,
    )
    comparisons = [comparison] + [
        run_dynamic_comparison(num_nodes=NODES, num_fragments=FRAGMENTS, seed=s)
        for s in (1, 2)
    ]
    base, opass = comparison.base, comparison.opass
    b, o = base.result.io_stats(), opass.result.io_stats()
    import numpy as np

    ratio = float(np.mean([c.io_improvement for c in comparisons]))

    print("\n=== Figure 11: I/O times, dynamic assignment, 64 nodes / 640 chunks ===")
    print(format_series("default dynamic", base.result.durations(), max_items=16))
    print(format_series("Opass dynamic  ", opass.result.durations(), max_items=16))
    print()
    print(paper_vs_measured([
        ("avg I/O improvement (3 seeds)", "2.7x", f"{ratio:.1f}x"),
        ("similar to Fig 7(c)", "yes",
         f"opass avg {o['avg']:.2f} s vs baseline {b['avg']:.2f} s"),
        ("locality", "-",
         f"{base.result.locality_fraction:.0%} -> {opass.result.locality_fraction:.0%}"),
        ("locality-aware steals", "-", opass.steals),
    ], title="Figure 11 summary"))

    assert 1.8 < ratio < 4.5  # paper: 2.7x
    assert opass.result.locality_fraction > 0.85
    assert base.result.locality_fraction < 0.15
    assert opass.result.makespan < base.result.makespan
