"""Extension bench: the write path and where the read problem comes from.

The paper's context: prior work (Garth, Sun) made MPI programs *write*
into HDFS efficiently; Opass fixes the *read* side.  This bench connects
the two:

1. ingest cost vs replication factor (the pipeline's price for r copies);
2. why the read problem exists at all: a reader aligned with the writers
   (same ranks, same intervals, writer-local placement) reads 100 % local
   for free — but the moment the reader fleet differs from the writer
   fleet (different process count, the common analysis case), locality
   collapses to ≈ r/m and Opass is needed.
"""

from repro.core import (
    ProcessPlacement,
    opass_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import (
    ClusterSpec,
    DistributedFileSystem,
    HdfsWriterLocalPlacement,
    uniform_dataset,
)
from repro.simulate import DatasetIngest, ParallelReadRun, StaticSource
from repro.viz import format_table

NODES = 32
CHUNKS = 320


def run_ingest_sweep(seed: int = 0):
    rows = []
    for r in (1, 2, 3):
        fs = DistributedFileSystem(
            ClusterSpec.homogeneous(NODES),
            replication=r,
            placement=HdfsWriterLocalPlacement(),
            seed=seed,
        )
        ds = uniform_dataset("w", CHUNKS)
        writers = ProcessPlacement.one_per_node(NODES)
        result = DatasetIngest(fs, writers, ds, seed=seed).run()
        s = result.write_stats()
        rows.append((r, s["avg"], s["max"], result.makespan))
    return rows


def run_reader_alignment(seed: int = 0):
    fs = DistributedFileSystem(
        ClusterSpec.homogeneous(NODES),
        placement=HdfsWriterLocalPlacement(),
        seed=seed,
    )
    ds = uniform_dataset("w", CHUNKS)
    writers = ProcessPlacement.one_per_node(NODES)
    DatasetIngest(fs, writers, ds, seed=seed).run()
    tasks = tasks_from_dataset(fs.dataset("w"))

    out = {}
    # Aligned readers: same fleet, same intervals as the writers.
    aligned = ParallelReadRun(
        fs, writers, tasks,
        StaticSource(rank_interval_assignment(CHUNKS, NODES)), seed=seed,
    ).run()
    out["aligned readers"] = aligned
    fs.reset_counters()
    # Misaligned: half the nodes run the analysis (different fleet).
    half = ProcessPlacement(tuple(range(0, NODES, 2)))
    misaligned = ParallelReadRun(
        fs, half, tasks,
        StaticSource(rank_interval_assignment(CHUNKS, half.num_processes)),
        seed=seed,
    ).run()
    out["misaligned readers"] = misaligned
    fs.reset_counters()
    # Opass fixes the misaligned fleet without rewriting anything.
    matched, _, _ = opass_single_data(fs, ds, half, seed=seed)
    out["misaligned + Opass"] = ParallelReadRun(
        fs, half, tasks, StaticSource(matched.assignment), seed=seed
    ).run()
    return out


def test_ext_ingest_pipeline(benchmark):
    rows = benchmark.pedantic(lambda: run_ingest_sweep(seed=0), rounds=1, iterations=1)
    print("\n=== ingest cost vs replication (32 writers, 320 x 64 MB) ===")
    print(format_table(
        ["replication", "avg write (s)", "max write (s)", "ingest makespan (s)"],
        rows,
    ))
    avgs = [r[1] for r in rows]
    # Every extra replica lengthens the pipeline.
    assert avgs == sorted(avgs)
    # r=1 writer-local ingest is a pure local disk write.
    assert rows[0][1] < 1.1


def test_ext_reader_alignment(benchmark):
    out = benchmark.pedantic(lambda: run_reader_alignment(seed=0), rounds=1, iterations=1)
    rows = []
    for name, run in out.items():
        rows.append((
            name, f"{run.locality_fraction:.0%}",
            run.io_stats()["avg"], run.makespan,
        ))
    print("\n=== reader/writer alignment (writer-local placement) ===")
    print(format_table(
        ["reader fleet", "locality", "avg io (s)", "makespan (s)"], rows,
    ))

    aligned = out["aligned readers"]
    misaligned = out["misaligned readers"]
    opass = out["misaligned + Opass"]
    # Aligned readers get locality for free.
    assert aligned.locality_fraction == 1.0
    # A different fleet loses most of it...
    assert misaligned.locality_fraction < 0.7
    # ...and Opass restores it without moving data.
    assert opass.locality_fraction > misaligned.locality_fraction + 0.2
    assert opass.io_stats()["avg"] < misaligned.io_stats()["avg"]
