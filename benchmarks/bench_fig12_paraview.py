"""Figure 12 + §V-B reproduction: ParaView MultiBlock rendering traces.

Paper setup: ParaView 3.14 on a 64-node cluster; 640 PDB-derived datasets,
64 per rendering step, ~56 MB per vtkFileSeriesReader call, ~26 GB total.

Paper findings:
* without Opass — avg call 5.48 s, std 1.339, fastest 2.63 s;
* with Opass — avg call 3.07 s, std 0.316, "a few outliers";
* total execution: ~167 s vs ~98 s over the 5-run average.
"""

from repro.experiments import run_paraview_comparison
from repro.viz import format_series, paper_vs_measured

NODES = 64
DATASETS = 640


def test_fig12_paraview_reader_trace(benchmark):
    comparison = benchmark.pedantic(
        lambda: run_paraview_comparison(num_nodes=NODES, num_datasets=DATASETS, seed=0),
        rounds=1, iterations=1,
    )
    stock, opass = comparison.stock, comparison.opass

    print("\n=== Figure 12: vtkFileSeriesReader call times, 64 nodes ===")
    print(format_series("w/o Opass ", stock.reader_call_times, max_items=16))
    print(format_series("with Opass", opass.reader_call_times, max_items=16))
    print()
    print(paper_vs_measured([
        ("avg call w/o Opass", "5.48 s", f"{stock.avg_call_time:.2f} s"),
        ("std w/o Opass", "1.339", f"{stock.std_call_time:.3f}"),
        ("fastest call w/o Opass", "2.63 s", f"{stock.min_call_time:.2f} s"),
        ("avg call with Opass", "3.07 s", f"{opass.avg_call_time:.2f} s"),
        ("std with Opass", "0.316", f"{opass.std_call_time:.3f}"),
        ("total w/o Opass", "~167 s", f"{stock.total_execution_time:.0f} s"),
        ("total with Opass", "~98 s", f"{opass.total_execution_time:.0f} s"),
    ], title="Figure 12 / §V-B summary"))

    # Shape: stock is slower and far noisier; Opass is tight around the
    # local read + parse cost; total run shrinks accordingly.
    assert 3.5 < stock.avg_call_time < 7.5
    assert stock.std_call_time > 0.6
    assert 2.5 < opass.avg_call_time < 3.6
    assert opass.std_call_time < 0.35
    assert opass.avg_call_time < stock.avg_call_time - 1.0
    # The stock reader's fastest call is a local read — about Opass's norm.
    assert abs(stock.min_call_time - opass.min_call_time) < 0.2
    # End-to-end: Opass saves roughly a third of the run (paper: 167->98).
    assert opass.total_execution_time < 0.8 * stock.total_execution_time


def test_fig12_five_run_average(benchmark):
    """§V-B's replication protocol: 'We run the tests 5 times and the
    average execution time of Paraview with Opass is around 98 second
    while that of Paraview without Opass is around 167 seconds.'"""
    from repro.experiments import run_paraview_repeated

    out = benchmark.pedantic(
        lambda: run_paraview_repeated(
            num_nodes=NODES, num_datasets=DATASETS, seeds=(0, 1, 2, 3, 4)
        ),
        rounds=1, iterations=1,
    )
    m = out.metrics
    print()
    print(paper_vs_measured([
        ("avg total w/o Opass (5 runs)", "~167 s",
         f"{m['stock_total'].mean:.0f} ± {m['stock_total'].std:.0f} s"),
        ("avg total with Opass (5 runs)", "~98 s",
         f"{m['opass_total'].mean:.0f} ± {m['opass_total'].std:.0f} s"),
    ], title="§V-B five-run averages"))

    # Stable ordering across every replication, in the paper's ballpark.
    assert m["opass_total"].max < m["stock_total"].min
    assert 80 < m["opass_total"].mean < 115
    assert 120 < m["stock_total"].mean < 185
