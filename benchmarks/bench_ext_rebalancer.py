"""Extension bench: HDFS balancer vs Opass on a skewed layout.

Two ways to attack the imbalance §IV-B describes (node addition leaves new
nodes empty):

* the **balancer** migrates replicas until storage is even — it pays real
  data movement, and an even layout alone still leaves parallel reads
  mostly remote (the §III argument is independent of skew);
* **Opass** leaves placement alone and fixes the access pattern.

The two compose: rebalancing restores locality *headroom* that Opass then
turns into actual local reads.
"""

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    locality_fraction,
    optimize_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, Rebalancer, SkewedPlacement
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import paper_vs_measured
from repro.workloads import single_data_workload

NODES = 32


def _fresh(seed: int):
    fs = DistributedFileSystem(
        ClusterSpec.homogeneous(NODES),
        placement=SkewedPlacement(excluded_fraction=0.5),
        seed=seed,
    )
    data = single_data_workload(NODES, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(NODES)
    tasks = tasks_from_dataset(data)
    return fs, placement, tasks


def run_matrix(seed: int = 0):
    """4 variants: {skewed, rebalanced} x {baseline, opass}."""
    out = {}
    for rebalance in (False, True):
        fs, placement, tasks = _fresh(seed)
        moved = 0
        if rebalance:
            report = Rebalancer(fs, threshold=0.15).run()
            moved = report.bytes_moved
        graph = graph_from_filesystem(fs, tasks, placement)
        for opass in (False, True):
            if opass:
                assignment = optimize_single_data(graph, seed=seed).assignment
            else:
                assignment = rank_interval_assignment(len(tasks), NODES)
            run = ParallelReadRun(
                fs, placement, tasks, StaticSource(assignment), seed=seed
            ).run()
            out[(rebalance, opass)] = (
                locality_fraction(assignment, graph), run, moved
            )
            fs.reset_counters()
    return out


def test_ext_rebalancer_vs_opass(benchmark):
    out = benchmark.pedantic(lambda: run_matrix(seed=0), rounds=1, iterations=1)

    rows = []
    for (rebalance, opass), (loc, run, moved) in sorted(out.items()):
        rows.append((
            ("rebalanced" if rebalance else "skewed")
            + " + " + ("opass" if opass else "baseline"),
            "-",
            f"local {loc:.0%}, avg io {run.io_stats()['avg']:.2f} s, "
            f"moved {moved / 1e9:.1f} GB",
        ))
    print()
    print(paper_vs_measured(rows, title="balancer vs Opass on a skewed layout"))

    skew_base = out[(False, False)]
    skew_opass = out[(False, True)]
    reb_base = out[(True, False)]
    reb_opass = out[(True, True)]

    # The balancer alone barely helps locality: even layout, still remote.
    assert reb_base[0] < 0.3
    # Opass alone recovers a lot without moving a byte.
    assert skew_opass[0] > 0.4
    assert skew_opass[2] == 0
    # Composed, they beat either alone.
    assert reb_opass[0] > skew_opass[0]
    assert reb_opass[0] > reb_base[0]
    # And the balancer's cost is real data movement.
    assert reb_opass[2] > 1e9  # > 1 GB migrated
    # End-to-end I/O ordering: rebalanced+opass is fastest.
    assert reb_opass[1].io_stats()["avg"] <= skew_base[1].io_stats()["avg"]
