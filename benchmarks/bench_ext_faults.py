"""Extension bench: Opass under DataNode failures.

Replication is HDFS's reliability story; this bench quantifies what a
failure costs an Opass-scheduled run: the dead node's chunks fall back to
remote replicas (locality dips by ≈ 1/m), in-flight reads retry, and the
run still completes every task.
"""

import numpy as np

from repro.core import ProcessPlacement, opass_single_data, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.simulate import FaultPlan, ParallelReadRun, StaticSource
from repro.viz import paper_vs_measured
from repro.workloads import single_data_workload

NODES = 32


def _build(seed: int):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)
    data = single_data_workload(NODES, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(NODES)
    tasks = tasks_from_dataset(data)
    result, _, _ = opass_single_data(fs, data, placement, seed=seed)
    return fs, placement, tasks, result.assignment


def run_comparison(seed: int = 0, failures: int = 2):
    fs, placement, tasks, assignment = _build(seed)
    clean = ParallelReadRun(
        fs, placement, tasks, StaticSource(assignment), seed=seed
    ).run()

    fs, placement, tasks, assignment = _build(seed)
    run = ParallelReadRun(fs, placement, tasks, StaticSource(assignment), seed=seed)
    plan = FaultPlan()
    for i in range(failures):
        plan.fail(1.0 + 2.0 * i, i)  # kill nodes 0..failures-1 mid-run
    plan.attach(run)
    faulty = run.run()
    return clean, faulty


def test_ext_fault_tolerance(benchmark):
    clean, faulty = benchmark.pedantic(
        lambda: run_comparison(seed=0, failures=2), rounds=1, iterations=1
    )

    print()
    print(paper_vs_measured([
        ("tasks completed (clean/faulty)", "-",
         f"{clean.tasks_completed}/{faulty.tasks_completed}"),
        ("read retries after 2 node deaths", "-", faulty.read_retries),
        ("locality clean -> faulty", "-",
         f"{clean.locality_fraction:.0%} -> {faulty.locality_fraction:.0%}"),
        ("makespan clean -> faulty", "-",
         f"{clean.makespan:.1f} s -> {faulty.makespan:.1f} s"),
    ], title="Opass run surviving 2 DataNode failures (32 nodes, r=3)"))

    # No work lost: replication absorbs the failures.
    assert faulty.tasks_completed == clean.tasks_completed == 320
    assert clean.read_retries == 0
    # Locality degrades gracefully: the two dead nodes' own chunks
    # (~2/32 of the tasks) go remote, nothing else changes.
    assert faulty.locality_fraction > clean.locality_fraction - 0.15
    assert faulty.locality_fraction < clean.locality_fraction
    # All bytes still delivered exactly once.
    total = 320 * 64e6
    assert faulty.local_bytes + faulty.remote_bytes == total
