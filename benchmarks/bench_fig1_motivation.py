"""Figure 1 reproduction: imbalanced serving + varied I/O times (motivation).

Paper setup: "an MPI-based application running with parallel processes on a
64-node cluster to read a data set, which contains 128 chunks, each around
64 MB.  Ideally, each node should serve 2 chunks.  However … some nodes,
for instance node-43, serve more than 6 chunks while some node serve none"
and the resulting read times "vary greatly".
"""

import numpy as np

from repro.experiments import run_motivating_experiment
from repro.metrics import imbalance_factor
from repro.viz import format_histogram, paper_vs_measured

NODES = 64
CHUNKS = 128


def test_fig1_motivating_imbalance(benchmark):
    outcome = benchmark.pedantic(
        lambda: run_motivating_experiment(num_nodes=NODES, num_chunks=CHUNKS, seed=0),
        rounds=1, iterations=1,
    )
    result, served = outcome.run, outcome.chunks_served
    durations = result.durations()

    # Figure 1(a): chunks served per node, ideal = 2 each.
    assert served.sum() == CHUNKS
    assert served.max() >= 5, "some node should serve far more than ideal"
    assert served.min() == 0, "some node should serve nothing"

    # Figure 1(b): I/O times vary widely.
    assert imbalance_factor(durations) > 3

    print("\n=== Figure 1(a): chunks served per node (64 nodes, 128 chunks) ===")
    print("ideal: 2 chunks/node; measured per-node counts:")
    print(" ".join(str(c) for c in served))
    print("\n=== Figure 1(b): I/O time distribution ===")
    print(format_histogram(durations, bins=8))
    print()
    print(paper_vs_measured([
        ("max chunks served by a node", "> 6", int(served.max())),
        ("min chunks served by a node", "0", int(served.min())),
        ("I/O time spread (max/min)", "varies greatly", f"{imbalance_factor(durations):.1f}x"),
    ], title="Figure 1 summary"))
