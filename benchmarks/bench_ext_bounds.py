"""Extension bench: bottleneck bounds explain (and certify) the results.

Bandwidth lower bounds on makespan — server-side (hottest disk's service
demand) and reader-side (slowest process's pipe demand) — hold for every
schedule.  Opass with a full matching *saturates* its bound (its measured
makespan is the bound plus seek latencies), certifying that no scheduler
could do meaningfully better on this hardware; the baseline's slack over
its bound is exactly its contention loss.
"""

from repro.analysis import makespan_bounds
from repro.core import optimize_single_data, rank_interval_assignment
from repro.experiments import build_single_data_graph, run_single_data_comparison
from repro.viz import format_table

SIZES = (16, 32, 64)


def run_bound_comparison(seed: int = 0):
    rows = []
    for m in SIZES:
        fs, placement, tasks, graph = build_single_data_graph(m, seed=seed)
        base_a = rank_interval_assignment(graph.num_tasks, m)
        opass_a = optimize_single_data(graph, seed=seed).assignment
        base_bound = makespan_bounds(base_a, graph, fs.spec).bound
        opass_bound = makespan_bounds(opass_a, graph, fs.spec).bound
        cmp = run_single_data_comparison(m, seed=seed)
        rows.append((
            m,
            base_bound, cmp.base.makespan, cmp.base.makespan / base_bound,
            opass_bound, cmp.opass.makespan, cmp.opass.makespan / opass_bound,
        ))
    return rows


def test_ext_makespan_bounds(benchmark):
    rows = benchmark.pedantic(lambda: run_bound_comparison(seed=0), rounds=1, iterations=1)
    print("\n=== bandwidth bounds vs simulated makespans ===")
    print(format_table(
        ["nodes", "base bound", "base sim", "base slack",
         "opass bound", "opass sim", "opass slack"],
        rows,
    ))

    for m, bb, bs, bslack, ob, osim, oslack in rows:
        # Bounds are genuine lower bounds.
        assert bs >= bb * 0.999
        assert osim >= ob * 0.999
        # Opass saturates its bound (within a couple of percent: latencies).
        assert oslack < 1.05
        # The baseline pays contention: well above its bound.
        assert bslack > 1.5
