"""Scheduler-side health: matching kernel wall-clock and throughput.

Not a paper figure — the maintainer's bench for the PR-5 matching hot
path.  The scenario it times is the steady-state re-matching round a
long-lived scheduler actually runs: the cluster layout has not changed
since the last round, so the snapshot→graph cache answers the build and
the reused flow network answers the solve.  The pre-PR kernels
(``tests/reference_matching``, a frozen snapshot of the dict-of-dict
graph and dataclass-edge solvers) rebuild and re-solve from scratch
every round; both sides produce bit-identical assignments, which the
golden fixtures and ``tests/test_properties_sched.py`` pin.

Beyond the printed table the bench emits ``BENCH_sched.json`` at the
repo root: one row per scale with cold/cached build times, cold/warm
solve times, steady-state matching throughput, the reference round time
and speedup, per-edge build allocations, and the ``SchedPerf`` counters.

Run standalone with a regression gate against the committed file::

    PYTHONPATH=src python benchmarks/bench_sched_performance.py \
        --scales 128,512 --check

``--check`` compares each measured scale's ``tasks_matched_per_second``
against the committed ``BENCH_sched.json`` and fails (exit 1) below
``REGRESSION_FLOOR`` (0.7×) of the committed number; without it the
measured rows are merged into the file.  CI runs the gated form on every
push (see .github/workflows/ci.yml, job ``bench-sched-regression``).
"""

import argparse
import gc
import json
import sys
import time
import tracemalloc
from pathlib import Path

# The frozen pre-PR oracle lives in the tests package (repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core import (
    ProcessPlacement,
    SchedPerf,
    build_locality_graph,
    clear_graph_cache,
    graph_from_filesystem,
    optimize_multi_data,
    optimize_single_data,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.viz import format_table
from repro.workloads import single_data_workload
from tests.reference_matching import (
    build_locality_graph_ref,
    optimize_single_data_ref,
)

#: Cluster sizes; tasks = 10 per node (the Fig-7 density), so the last
#: point is the ISSUE's 1024-node / 10240-task scale.
SCALES = (128, 256, 512, 1024)

CHUNKS_PER_PROCESS = 10

#: Matching is deterministic, so run-to-run wall variance is pure
#: scheduler/frequency noise — report the fastest of a few repeats.
#: The warm rounds are single-digit milliseconds, so repeats are cheap
#: and the extra two materially steady the gated throughput number.
REPEATS = 5

#: ``--check`` fails when a scale's measured tasks_matched_per_second
#: drops below this fraction of the committed BENCH_sched.json number.
#: Loose enough for shared-runner noise, tight enough to catch a lost
#: cache, a dropped solve memo, or a return to dict-of-dict graphs.
REGRESSION_FLOOR = 0.7

#: Extra sweep points for the scaling-curve artifact.  Not part of CI's
#: quick gate; `--extended` appends them.
EXTENDED_SCALES = (2048, 4096)

#: Per-edge heap bytes allocated by a cold CSR graph build (tracemalloc).
#: The flat-list CSR measures ~92 B/edge (which includes the graph's
#: O(n) task/size bookkeeping); the pre-PR dict-of-dict builder measures
#: ~123 B/edge.  The bound sits between the two, so an accidental return
#: to per-edge dict entries fails the bench.
MAX_BUILD_BYTES_PER_EDGE = 112.0

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sched.json"


def _make_workload(m: int, seed: int):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
    data = single_data_workload(m, CHUNKS_PER_PROCESS)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(m)
    tasks = tasks_from_dataset(data)
    return fs, placement, tasks


def _best(fn, repeats):
    """Fastest wall-clock of ``repeats`` runs of ``fn`` (seconds)."""
    times = []
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _run_once(m: int, seed: int, repeats: int = REPEATS):
    fs, placement, tasks = _make_workload(m, seed)
    locations = fs.layout_snapshot()
    sizes = {cid: fs.chunk(cid).size for t in tasks for cid in t.inputs}
    n = len(tasks)

    # Cold build, with the per-edge allocation micro-assert's raw number.
    clear_graph_cache()
    gc.collect()
    tracemalloc.start()
    t0 = time.perf_counter()
    graph = build_locality_graph(tasks, locations, sizes, placement)
    build_cold_s = time.perf_counter() - t0
    traced_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    bytes_per_edge = traced_bytes / graph.num_edges

    # Cold solve on the freshly built graph (empty scratch).
    t0 = time.perf_counter()
    optimize_single_data(graph, seed=seed)
    solve_cold_s = time.perf_counter() - t0

    # Multi-data (Algorithm 1) on the same graph, once — secondary metric.
    t0 = time.perf_counter()
    optimize_multi_data(graph, seed=seed)
    multi_s = time.perf_counter() - t0

    # Steady-state round: unchanged layout, so the graph comes from the
    # snapshot cache and the solve replays the memoised virgin solve.
    perf = SchedPerf()
    clear_graph_cache()
    graph_from_filesystem(fs, tasks, placement, perf=perf)

    def warm_round():
        g = graph_from_filesystem(fs, tasks, placement, perf=perf)
        optimize_single_data(g, seed=seed, perf=perf)

    warm_round()  # prime the scratch network and solve memo
    build_cached_s = _best(
        lambda: graph_from_filesystem(fs, tasks, placement, perf=perf), repeats
    )
    round_warm_s = _best(warm_round, repeats)

    # The pre-PR kernels have no cache to warm: their steady-state round
    # is a full rebuild plus a cold solve, every time.
    def ref_round():
        g = build_locality_graph_ref(tasks, locations, sizes, placement)
        optimize_single_data_ref(g, seed=seed)

    ref_round_s = _best(ref_round, repeats)

    snap = perf.snapshot()
    return {
        "nodes": m,
        "tasks": n,
        "edges": graph.num_edges,
        "build_cold_ms": build_cold_s * 1000,
        "build_cached_ms": build_cached_s * 1000,
        "solve_cold_ms": solve_cold_s * 1000,
        "round_warm_ms": round_warm_s * 1000,
        "tasks_matched_per_second": n / round_warm_s,
        "ref_round_ms": ref_round_s * 1000,
        "speedup_vs_reference": ref_round_s / round_warm_s,
        "multi_ms": multi_s * 1000,
        "build_bytes_per_edge": bytes_per_edge,
        "cache_hits": snap["cache_hits"],
        "cache_misses": snap["cache_misses"],
        "solves": snap["solves"],
        "solve_replays": snap["solve_replays"],
        "augmentations": snap["augmentations"],
        "bfs_phases": snap["bfs_phases"],
    }


def run_scaling(seed: int = 1, repeats: int = REPEATS, scales=SCALES):
    return [_run_once(m, seed, repeats) for m in scales]


def print_rows(rows):
    print("\n=== matching throughput (steady-state re-matching round) ===")
    print(format_table(
        ["nodes", "tasks", "edges", "build (ms)", "cached (ms)",
         "cold (ms)", "round (ms)", "tasks/s", "ref (ms)", "speedup",
         "B/edge"],
        [
            (r["nodes"], r["tasks"], r["edges"], r["build_cold_ms"],
             r["build_cached_ms"], r["solve_cold_ms"], r["round_warm_ms"],
             r["tasks_matched_per_second"], r["ref_round_ms"],
             r["speedup_vs_reference"], r["build_bytes_per_edge"])
            for r in rows
        ],
        float_fmt="{:.2f}",
    ))


def assert_row_health(r):
    """Structural invariants every scale must satisfy."""
    # A steady-state round must stay interactive even at 1024 nodes.
    assert r["round_warm_ms"] < 1000.0
    assert r["tasks_matched_per_second"] > 20_000
    # The cached build must be much cheaper than the cold one.
    assert r["build_cached_ms"] < r["build_cold_ms"]
    # Satellite micro-assert: the CSR build must stay flat-array cheap —
    # a return to per-edge dict entries roughly doubles this number.
    assert r["build_bytes_per_edge"] < MAX_BUILD_BYTES_PER_EDGE
    # The steady-state machinery must actually engage.
    assert r["cache_hits"] > 0
    assert r["solve_replays"] > 0
    # The ISSUE acceptance: ≥5× matching throughput at 1024/10240 versus
    # the pre-PR kernels (measured ~28× with the solve-replay memo).
    if r["nodes"] >= 1024:
        assert r["speedup_vs_reference"] >= 5.0


def test_sched_matching_throughput(benchmark):
    rows = benchmark.pedantic(lambda: run_scaling(seed=1), rounds=1, iterations=1)
    print_rows(rows)
    BENCH_JSON.write_text(json.dumps({"scales": rows}, indent=1) + "\n")
    for r in rows:
        assert_row_health(r)


def check_regression(rows, committed_path=BENCH_JSON, floor=REGRESSION_FLOOR):
    """Compare measured rows against the committed bench file.

    Returns a list of failure strings (empty = pass)."""
    committed = {
        r["nodes"]: r for r in json.loads(committed_path.read_text())["scales"]
    }
    failures = []
    for r in rows:
        base = committed.get(r["nodes"])
        if base is None:
            print(f"nodes={r['nodes']}: no committed baseline, skipping gate")
            continue
        ratio = r["tasks_matched_per_second"] / base["tasks_matched_per_second"]
        verdict = "OK" if ratio >= floor else "REGRESSION"
        print(
            f"nodes={r['nodes']}: {r['tasks_matched_per_second']:.0f} tasks/s "
            f"vs committed {base['tasks_matched_per_second']:.0f} "
            f"({ratio:.2f}x, floor {floor:.2f}x) {verdict}"
        )
        if ratio < floor:
            failures.append(
                f"nodes={r['nodes']} regressed to {ratio:.2f}x of committed "
                f"tasks_matched_per_second"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="matching throughput bench / regression gate"
    )
    parser.add_argument(
        "--scales", default=",".join(str(s) for s in SCALES),
        help="comma-separated cluster sizes (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS,
        help="runs per scale, fastest kept (default: %(default)s)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="where to write the measured rows (default: BENCH_sched.json "
             "when merging; with --check, only written if given)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate against the committed BENCH_sched.json instead of "
             "merging into it; exit 1 on regression",
    )
    parser.add_argument(
        "--extended", action="store_true",
        help=f"also sweep the artifact-only scales {EXTENDED_SCALES} "
             "(kept out of CI's quick gate)",
    )
    args = parser.parse_args(argv)
    scales = tuple(int(s) for s in args.scales.split(","))
    if args.extended:
        scales = scales + tuple(s for s in EXTENDED_SCALES if s not in scales)
    rows = run_scaling(seed=1, repeats=args.repeats, scales=scales)
    print_rows(rows)
    for r in rows:
        assert_row_health(r)
    if args.check:
        failures = check_regression(rows)
        if args.out is not None:
            args.out.write_text(json.dumps({"scales": rows}, indent=1) + "\n")
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1 if failures else 0
    # Merge: measured scales replace committed ones, others are kept.
    out = args.out if args.out is not None else BENCH_JSON
    merged = {}
    if BENCH_JSON.exists():
        merged = {
            r["nodes"]: r for r in json.loads(BENCH_JSON.read_text())["scales"]
        }
    merged.update({r["nodes"]: r for r in rows})
    out.write_text(
        json.dumps(
            {"scales": [merged[k] for k in sorted(merged)]}, indent=1
        ) + "\n"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
