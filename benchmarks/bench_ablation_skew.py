"""Ablation: unbalanced data layouts (node addition/removal).

§IV-B: "in HDFS, there are cases that can cause the data distribution to be
unbalanced.  For instance, node addition or removal could cause an
unbalanced redistribution of data.  Because of this, the maximum matching
… may be not a full matching … we randomly assign unmatched tasks".

This ablation injects placement skew (a fraction of nodes holds no data, as
right after adding nodes) and verifies the degradation is graceful: the
matching stays optimal w.r.t. the skewed layout, the fallback fills quotas,
and Opass still beats the baseline.
"""

from repro.core import (
    ProcessPlacement,
    equal_quotas,
    graph_from_filesystem,
    locality_fraction,
    optimize_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, SkewedPlacement
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 32


def sweep_skew(seed: int = 0):
    rows = []
    for excluded in (0.0, 0.125, 0.25, 0.5):
        fs = DistributedFileSystem(
            ClusterSpec.homogeneous(NODES),
            placement=SkewedPlacement(excluded_fraction=excluded),
            seed=seed,
        )
        data = single_data_workload(NODES, 10)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = tasks_from_dataset(data)
        graph = graph_from_filesystem(fs, tasks, placement)
        result = optimize_single_data(graph, seed=seed)
        result.assignment.validate(
            len(tasks), quotas=equal_quotas(len(tasks), NODES)
        )
        base = locality_fraction(rank_interval_assignment(len(tasks), NODES), graph)
        opass = locality_fraction(result.assignment, graph)
        rows.append((
            excluded, base, opass, result.full_matching, len(result.fallback_tasks)
        ))
    return rows


def test_ablation_placement_skew(benchmark):
    rows = benchmark.pedantic(lambda: sweep_skew(seed=0), rounds=1, iterations=1)
    print("\n=== ablation: placement skew (fraction of empty 'new' nodes) ===")
    print(format_table(
        ["excluded fraction", "baseline locality", "opass locality",
         "full matching", "fallback tasks"],
        rows, float_fmt="{:.3f}",
    ))

    # No skew: full matching, no fallback.
    assert rows[0][3] is True
    assert rows[0][4] == 0
    # Skew degrades the matching but Opass still dominates the baseline.
    for excluded, base, opass, full, fallback in rows:
        assert opass >= base
    # At 50% excluded nodes half the processes have no local data: the
    # matching cannot be full and the fallback must kick in.
    assert rows[-1][3] is False
    assert rows[-1][4] > 0
    # Locality upper bound under skew: at most the eligible-node fraction
    # of processes can read locally; the matcher should get close to it.
    assert rows[-1][2] > 0.35  # half the nodes can still serve their quota
