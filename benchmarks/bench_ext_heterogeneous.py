"""Extension bench: speed-weighted quotas on a heterogeneous cluster.

§IV-D targets heterogeneous environments but seeds the dynamic scheduler
with an equal-share matching.  When half the nodes have 2x-faster disks,
equal quotas leave the fast half idle while the slow half straggles; the
speed-weighted matching (quotas ∝ disk bandwidth) shortens the makespan
while keeping reads local.
"""

import numpy as np

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    optimize_single_data,
    plan_heterogeneous,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, NodeSpec
from repro.dfs.cluster import DEFAULT_NIC_BW
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import paper_vs_measured
from repro.workloads import single_data_workload

NODES = 32
FAST_BW = 140e6
SLOW_BW = 70e6


def _build(seed: int):
    nodes = tuple(
        NodeSpec(i, disk_bw=FAST_BW if i < NODES // 2 else SLOW_BW, nic_bw=DEFAULT_NIC_BW)
        for i in range(NODES)
    )
    spec = ClusterSpec(nodes=nodes)
    fs = DistributedFileSystem(spec, seed=seed)
    data = single_data_workload(NODES, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(NODES)
    tasks = tasks_from_dataset(data)
    graph = graph_from_filesystem(fs, tasks, placement)
    return spec, fs, placement, tasks, graph


def run_comparison(seed: int = 0):
    out = {}
    for variant in ("equal", "weighted"):
        spec, fs, placement, tasks, graph = _build(seed)
        if variant == "equal":
            assignment = optimize_single_data(graph, seed=seed).assignment
        else:
            assignment = plan_heterogeneous(graph, spec, seed=seed).matching.assignment
        run = ParallelReadRun(
            fs, placement, tasks, StaticSource(assignment), seed=seed
        ).run()
        out[variant] = (assignment, run)
    return out


def test_ext_heterogeneous_quotas(benchmark):
    out = benchmark.pedantic(lambda: run_comparison(seed=0), rounds=1, iterations=1)
    equal_a, equal_run = out["equal"]
    weighted_a, weighted_run = out["weighted"]

    fast_load = sum(len(weighted_a.tasks_of[r]) for r in range(NODES // 2))
    slow_load = sum(len(weighted_a.tasks_of[r]) for r in range(NODES // 2, NODES))

    print()
    print(paper_vs_measured([
        ("fast:slow disk ratio", "-", "2:1"),
        ("weighted task split fast/slow", "-", f"{fast_load}/{slow_load}"),
        ("makespan equal quotas", "-", f"{equal_run.makespan:.1f} s"),
        ("makespan weighted quotas", "-", f"{weighted_run.makespan:.1f} s"),
        ("locality equal / weighted", "-",
         f"{equal_run.locality_fraction:.0%} / {weighted_run.locality_fraction:.0%}"),
    ], title="heterogeneous cluster: speed-weighted Opass quotas"))

    assert equal_run.tasks_completed == weighted_run.tasks_completed == 320
    # Weighted quotas load the fast half ~2x the slow half (Hamilton
    # rounding of 13.33/6.67 per rank lands slightly below exactly 2:1).
    assert 1.7 <= fast_load / slow_load <= 2.1
    # And finish sooner: the slow disks stop being the critical path.
    assert weighted_run.makespan < equal_run.makespan * 0.85
    # Locality stays high in both (weighted may trade a little away).
    assert weighted_run.locality_fraction > 0.8
