"""Internal-consistency bench: analytical models vs the full simulator.

Not a figure from the paper — a reproduction-quality check.  The §III
closed forms and the discrete-event simulator implement the same random
experiment through completely different code paths; this bench sweeps a
configuration grid and asserts they agree, which is what makes the
simulated figure reproductions trustworthy.
"""

from repro.analysis import validation_grid
from repro.viz import format_table


def test_validation_grid(benchmark):
    rows = benchmark.pedantic(
        lambda: validation_grid(
            cluster_sizes=(8, 16, 32), replications=(2, 3), trials=3, seed=0
        ),
        rounds=1,
        iterations=1,
    )

    table = [
        (
            r.num_nodes,
            r.replication,
            r.model_locality,
            r.simulated_locality,
            r.locality_error,
            r.model_served_std,
            r.simulated_served_std,
        )
        for r in rows
    ]
    print("\n=== model vs simulation consistency grid ===")
    print(format_table(
        ["nodes", "r", "model local", "sim local", "|err|",
         "model serve std", "sim serve std"],
        table, float_fmt="{:.3f}",
    ))

    for r in rows:
        assert r.locality_error < 0.1, r
        assert 0.4 < r.served_std_ratio < 1.8, r
