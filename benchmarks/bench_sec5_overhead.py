"""§V-C reproduction: matching overhead and scheduler scalability.

Paper findings:
* "the overhead created by the matching method was less than 1% of the
  overhead involved with accessing the whole dataset";
* remote chunk reads take >2 s (worst 12 s) while Opass reads finish in
  ~1 s, so scheduling cost is second-order;
* scalability: matching time grows with problem size (left as future work
  in the paper; quantified here).
"""

from repro.core import SchedPerf, optimize_single_data, rank_interval_assignment
from repro.experiments import (
    build_single_data_graph,
    matching_scalability_sweep,
    measure_matching_overhead,
)
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import format_table, paper_vs_measured

NODES = 64


def test_sec5c_matching_overhead_under_one_percent(benchmark):
    """Wall-clock matching cost vs simulated data-access time."""
    _, _, _, graph = build_single_data_graph(NODES)
    benchmark(lambda: optimize_single_data(graph, seed=0))

    overhead = measure_matching_overhead(NODES, seed=0)
    print()
    print(paper_vs_measured([
        ("matching overhead / data access", "< 1%",
         f"{overhead.overhead_fraction:.2%}"),
        ("matching wall-clock (640 tasks)", "-",
         f"{overhead.matching_seconds * 1000:.1f} ms"),
        ("dataset access time", "-", f"{overhead.access_seconds:.1f} s"),
    ], title="§V-C overhead"))
    assert overhead.overhead_fraction < 0.01


def test_sec5c_scheduler_scalability(benchmark):
    """Matching cost growth across problem sizes (the paper's future-work
    concern, quantified out to 1024 nodes / 10240 tasks)."""
    perf = SchedPerf()
    rows = benchmark.pedantic(
        lambda: matching_scalability_sweep(measure_io=True, perf=perf),
        rounds=1, iterations=1,
    )
    print("\n=== matching scalability (10 chunks/process, r=3) ===")
    print(format_table(
        ["nodes", "tasks", "graph edges", "matching (ms)",
         "sim I/O (s)", "matching / I/O"],
        [
            (
                r.num_nodes, r.num_tasks, r.num_edges,
                f"{r.matching_ms:.2f}",
                f"{r.access_s:.2f}",
                f"{r.overhead_fraction:.3%}",
            )
            for r in rows
        ],
    ))
    print(f"graph builds: {perf.graph_builds}, solves: {perf.solves}, "
          f"augmentations: {perf.augmentations}")
    # The paper's "<1 %" claim holds at its scales; at 1024 nodes the
    # matcher still finishes far below a single remote chunk read (>2 s).
    for row in rows:
        if row.num_nodes <= 256:
            assert row.overhead_fraction < 0.01
    assert rows[-1].matching_ms < 2000.0


def test_sec5c_remote_vs_local_read_costs(benchmark):
    """Paper: remote reads take >2 s (worst 12 s); Opass ~1 s."""
    fs, placement, tasks, graph = build_single_data_graph(NODES, seed=2)
    base = ParallelReadRun(
        fs, placement, tasks,
        StaticSource(rank_interval_assignment(len(tasks), NODES)),
        seed=2,
    ).run()
    remote = [r.duration for r in base.records if not r.local]
    local = [r.duration for r in base.records if r.local]
    benchmark(lambda: sorted(remote))

    print()
    print(paper_vs_measured([
        ("typical remote chunk read", "> 2 s", f"{sum(remote)/len(remote):.1f} s avg"),
        ("worst remote chunk read", "~12 s", f"{max(remote):.1f} s"),
        ("uncontended local chunk read", "~1 s", f"{min(local):.2f} s"),
    ], title="§V-C read costs"))

    assert sum(remote) / len(remote) > 2.0
    assert max(remote) > 6.0
    # An uncontended local read is ~1 s; under the baseline even local
    # reads can slow down because the local disk is busy serving remote
    # requests — which is precisely the contention Opass removes.
    assert min(local) < 1.0
