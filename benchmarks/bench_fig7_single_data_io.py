"""Figure 7 reproduction: single-data I/O times vs cluster size + 64-node trace.

Paper findings this bench regenerates:
* 7(a) — without Opass the max I/O time grows sharply with cluster size
  (9X the minimum at 16 nodes, 21X at 80) while the minimum stays flat;
* 7(b) — with Opass I/O time is flat (~0.9 s average) at every scale;
* 7(c) — the 64-node trace: baseline read times climb as execution
  progresses; with Opass the whole trace sits at one-two seconds; "the
  average I/O operation time with the use of Opass is a quarter of that
  without Opass".
"""

import numpy as np

from repro.metrics import summarize, windowed_means
from repro.viz import format_series, format_table, paper_vs_measured

from conftest import SWEEP_SIZES, run_single_data_comparison


def test_fig7ab_io_time_vs_cluster_size(benchmark, sweep_results):
    benchmark.pedantic(
        lambda: run_single_data_comparison(16, seed=9), rounds=1, iterations=1
    )

    rows = []
    ratios = {}
    for m in SWEEP_SIZES:
        runs = sweep_results[m]
        base_stats = [r.base.io_stats() for r in runs]
        opass_stats = [r.opass.io_stats() for r in runs]
        b_avg = np.mean([s["avg"] for s in base_stats])
        b_max = np.mean([s["max"] for s in base_stats])
        b_min = np.mean([s["min"] for s in base_stats])
        o_avg = np.mean([s["avg"] for s in opass_stats])
        o_max = np.mean([s["max"] for s in opass_stats])
        o_min = np.mean([s["min"] for s in opass_stats])
        ratios[m] = b_max / b_min
        rows.append((m, b_avg, b_max, b_min, o_avg, o_max, o_min))

    print("\n=== Figure 7(a)/(b): chunk I/O time vs cluster size (mean of 3 seeds) ===")
    print(format_table(
        ["nodes", "base avg", "base max", "base min",
         "opass avg", "opass max", "opass min"],
        rows,
    ))
    print()
    print(paper_vs_measured([
        ("baseline max/min at 16 nodes", "9x", f"{ratios[16]:.1f}x"),
        ("baseline max/min at 80 nodes", "21x", f"{ratios[80]:.1f}x"),
        ("Opass avg I/O time (all sizes)", "~0.9 s",
         f"{np.mean([r[4] for r in rows]):.2f} s"),
    ], title="Figure 7(a)/(b) summary"))

    # Shape assertions: Opass flat and fast at every size.
    for m, b_avg, b_max, b_min, o_avg, o_max, o_min in rows:
        assert o_avg < 1.1, f"Opass avg should be ~0.9 s at m={m}"
        assert o_max < 2.0, f"Opass max should stay flat at m={m}"
        assert b_avg > 2 * o_avg, f"baseline should be >2x slower at m={m}"
        assert b_max / b_min > 5, f"baseline spread should be large at m={m}"
    # Baseline min is a local read and stays constant across sizes.
    mins = [r[3] for r in rows]
    assert max(mins) - min(mins) < 0.1


def test_fig7c_64_node_trace(benchmark, sweep_results):
    comparison = sweep_results[64][0]
    base_trace = benchmark(comparison.base.durations)
    opass_trace = comparison.opass.durations()

    print("\n=== Figure 7(c): I/O time per operation, 64 nodes / 640 chunks ===")
    print(format_series("w/o Opass ", base_trace, max_items=20))
    print(format_series("with Opass", opass_trace, max_items=20))
    base_window = windowed_means(base_trace, 5)
    print(format_series("w/o Opass trend (5 windows)", base_window))

    ratio = summarize(base_trace).avg / summarize(opass_trace).avg
    print()
    print(paper_vs_measured([
        ("avg I/O improvement", "4x ('a quarter')", f"{ratio:.1f}x"),
        ("Opass trace level", "1-2 s", f"{opass_trace.min():.2f}-{opass_trace.max():.2f} s"),
        ("baseline trace climbs", "increases after initiation",
         f"{base_window[0]:.2f} -> {base_window[-1]:.2f} s (first vs last window)"),
    ], title="Figure 7(c) summary"))

    # Shape: baseline trace climbs; Opass flat in the 1-2 s band.
    assert base_window[-1] > base_window[0]
    assert opass_trace.max() <= 2.0
    assert ratio > 2.0
