"""Extension bench: incremental re-matching (the §V-C future work).

"As the problem size becomes extremely large, the matching method may not
be scalable.  We leave this problem as a future work."  Quantified here:
after a single node loss, repairing the existing matching touches only the
affected tasks — orders of magnitude less work (and churn) than solving
from scratch, at equal quality.
"""

import time

from repro.core import (
    ProcessPlacement,
    equal_quotas,
    graph_from_filesystem,
    locality_fraction,
    optimize_single_data,
    rematch_incremental,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.viz import format_table
from repro.workloads import single_data_workload


def _build(m: int, seed: int = 0):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(m), seed=seed)
    data = single_data_workload(m, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(m)
    tasks = tasks_from_dataset(data)
    graph = graph_from_filesystem(fs, tasks, placement)
    return fs, placement, tasks, graph


def run_sweep(seed: int = 0):
    rows = []
    for m in (32, 64, 128, 256):
        fs, placement, tasks, graph = _build(m, seed)
        base = optimize_single_data(graph, seed=seed)
        # A node dies with its process: quota shifts to the survivors.
        fs.namenode.drop_node_replicas(0)
        new_graph = graph_from_filesystem(fs, tasks, placement)
        survivors = equal_quotas(len(tasks), m - 1)
        quotas = [0] + survivors

        t0 = time.perf_counter()
        scratch = optimize_single_data(new_graph, quotas=quotas, seed=seed)
        scratch_ms = (time.perf_counter() - t0) * 1000

        t0 = time.perf_counter()
        inc = rematch_incremental(new_graph, base.assignment, quotas=quotas, seed=seed)
        inc_ms = (time.perf_counter() - t0) * 1000

        old_owner = base.assignment.process_of()
        scr_owner = scratch.assignment.process_of()
        scratch_churn = sum(
            1 for t in range(len(tasks)) if scr_owner[t] != old_owner[t]
        )
        rows.append((
            m, len(tasks),
            scratch_ms, inc_ms,
            scratch_churn, inc.churn,
            locality_fraction(scratch.assignment, new_graph),
            locality_fraction(inc.assignment, new_graph),
        ))
    return rows


def test_ext_incremental_rematching(benchmark):
    rows = benchmark.pedantic(lambda: run_sweep(seed=0), rounds=1, iterations=1)
    print("\n=== incremental vs from-scratch rematch after one node loss ===")
    print(format_table(
        ["nodes", "tasks", "scratch ms", "incremental ms",
         "scratch churn", "incremental churn", "scratch local", "inc local"],
        rows, float_fmt="{:.2f}",
    ))

    for m, n, scratch_ms, inc_ms, scratch_churn, inc_churn, scr_loc, inc_loc in rows:
        # Vastly less churn at equal (or better) locality.
        assert inc_churn < scratch_churn / 2
        assert inc_churn <= 3 * (n // m) + 10  # lost tasks + bounded ripple
        assert inc_loc >= scr_loc - 0.05
    # The repair is also faster at every size, increasingly so at scale.
    assert rows[-1][3] < rows[-1][2]
