"""Extension bench: the dynamic-dispatch baseline ladder.

§VI cites delay scheduling as a locality technique orthogonal to Opass.
This bench lines up the full ladder of dynamic dispatchers on the Fig-11
workload:

1. random (the paper's default master),
2. locality-greedy (take a local task if one remains),
3. delay scheduling (greedy + bounded wait before conceding to remote),
4. Opass guided lists.

Greedy/delay recover most of the locality, but they race for replicas with
no plan, so the run's tail is imbalanced and the makespan stays above
Opass's — the matching's value is *which* local task each worker takes.
"""

from repro.core import (
    DefaultDynamicPolicy,
    DelaySchedulingPolicy,
    LocalityGreedyPolicy,
    ProcessPlacement,
    graph_from_filesystem,
    opass_dynamic_plan,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.simulate import ParallelReadRun
from repro.viz import format_table
from repro.workloads import gene_database

NODES = 32
FRAGMENTS = 320


def run_ladder(seed: int = 0):
    out = {}
    for name in ("random", "greedy", "delay", "opass"):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)
        db = gene_database(FRAGMENTS)
        fs.put_dataset(db)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = tasks_from_dataset(db)
        graph = graph_from_filesystem(fs, tasks, placement)
        if name == "random":
            policy = DefaultDynamicPolicy(len(tasks), mode="random", seed=seed)
        elif name == "greedy":
            policy = LocalityGreedyPolicy(graph, seed=seed)
        elif name == "delay":
            policy = DelaySchedulingPolicy(
                graph, max_delay=2.0, poll_interval=0.5, seed=seed
            )
        else:
            policy, _, _ = opass_dynamic_plan(fs, "genedb", placement, seed=seed)
        run = ParallelReadRun(fs, placement, tasks, policy, seed=seed)
        result = run.run()
        out[name] = (result, run.waits)
    return out


def test_ext_dispatch_policy_ladder(benchmark):
    out = benchmark.pedantic(lambda: run_ladder(seed=0), rounds=1, iterations=1)

    rows = []
    for name in ("random", "greedy", "delay", "opass"):
        result, waits = out[name]
        s = result.io_stats()
        rows.append((
            name, f"{result.locality_fraction:.0%}",
            s["avg"], s["max"], result.makespan, waits,
        ))
    print("\n=== dynamic dispatch ladder (32 nodes, 320 fragments) ===")
    print(format_table(
        ["policy", "locality", "avg io (s)", "max io (s)", "makespan (s)", "waits"],
        rows,
    ))

    random_r = out["random"][0]
    greedy_r = out["greedy"][0]
    delay_r, delay_waits = out["delay"]
    opass_r = out["opass"][0]

    for result, _ in out.values():
        assert result.tasks_completed == FRAGMENTS

    # Locality ladder: random ≪ greedy ≈ delay ≤ opass.
    assert random_r.locality_fraction < 0.2
    assert greedy_r.locality_fraction > 0.6
    assert delay_r.locality_fraction >= greedy_r.locality_fraction - 0.05
    assert opass_r.locality_fraction > 0.9
    # Delay scheduling actually waited.
    assert delay_waits > 0
    # End-to-end, Opass is the fastest of the four.
    assert opass_r.makespan <= min(
        random_r.makespan, greedy_r.makespan, delay_r.makespan
    )
    assert opass_r.io_stats()["avg"] <= greedy_r.io_stats()["avg"]
