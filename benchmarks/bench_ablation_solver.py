"""Ablation: max-flow solver choice and capacity encoding.

The paper uses "the standard max-flow algorithm, Ford-Fulkerson".  This
ablation compares our two Ford–Fulkerson-family implementations (Dinic and
Edmonds–Karp) and the two capacity encodings (unit tasks vs bytes) on
identical graphs: all must deliver the same matching quality; Dinic should
be at least as fast on these unit-capacity bipartite networks.
"""

import time

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    locality_fraction,
    optimize_single_data,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 64


def _graph(seed: int = 0):
    fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)
    data = single_data_workload(NODES, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(NODES)
    tasks = tasks_from_dataset(data)
    return graph_from_filesystem(fs, tasks, placement)


def test_ablation_solver_choice(benchmark):
    graph = _graph(seed=0)
    benchmark(lambda: optimize_single_data(graph, algorithm="dinic", seed=0))

    rows = []
    results = {}
    for algorithm in ("dinic", "edmonds_karp"):
        for mode in ("unit", "bytes"):
            t0 = time.perf_counter()
            result = optimize_single_data(
                graph, algorithm=algorithm, capacity_mode=mode, seed=0
            )
            elapsed = (time.perf_counter() - t0) * 1000
            quality = locality_fraction(result.assignment, graph)
            results[(algorithm, mode)] = (result, quality)
            rows.append((algorithm, mode, result.max_flow, f"{quality:.1%}", elapsed))

    print("\n=== ablation: solver / capacity encoding (64 nodes, 640 tasks) ===")
    print(format_table(
        ["algorithm", "capacities", "max flow", "locality", "time (ms)"],
        rows,
    ))

    # Same matching quality regardless of solver.
    q_unit = {a: results[(a, "unit")][1] for a in ("dinic", "edmonds_karp")}
    assert q_unit["dinic"] == q_unit["edmonds_karp"]
    # Unit and byte encodings agree on uniform chunk files.
    assert results[("dinic", "unit")][1] == results[("dinic", "bytes")][1]
    # Flow values consistent across solvers within each encoding.
    assert (results[("dinic", "unit")][0].max_flow
            == results[("edmonds_karp", "unit")][0].max_flow)
