"""Ablation: chunks-per-process ratio.

Paper: "Our test dataset contains approximately ten chunk files for every
process.  Note that this is an arbitrary ratio that could be changed
without affecting the performance of Opass."  This ablation verifies that
claim: Opass's locality and per-chunk I/O time stay flat as the ratio
sweeps from 2 to 40 chunks per process.
"""

import numpy as np

from repro.core import ProcessPlacement, tasks_from_dataset
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.parallel import run_opass_single, run_rank_interval
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 32


def sweep_ratio(seed: int = 0):
    rows = []
    for ratio in (2, 5, 10, 20, 40):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)
        data = single_data_workload(NODES, ratio)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = tasks_from_dataset(data)
        base = run_rank_interval(fs, placement, tasks, seed=seed)
        fs.reset_counters()
        opass = run_opass_single(fs, placement, tasks, seed=seed)
        rows.append((
            ratio,
            base.result.io_stats()["avg"],
            opass.result.io_stats()["avg"],
            opass.result.locality_fraction,
        ))
    return rows


def test_ablation_chunks_per_process_ratio(benchmark):
    rows = benchmark.pedantic(lambda: sweep_ratio(seed=0), rounds=1, iterations=1)
    print("\n=== ablation: chunks-per-process ratio (32 nodes) ===")
    print(format_table(
        ["chunks/process", "baseline avg io (s)", "opass avg io (s)", "opass locality"],
        rows, float_fmt="{:.3f}",
    ))

    opass_avgs = [r[2] for r in rows]
    opass_locs = [r[3] for r in rows]
    # The paper's claim: the ratio does not affect Opass's performance.
    assert max(opass_avgs) - min(opass_avgs) < 0.15
    assert all(loc > 0.95 for loc in opass_locs)
    # The baseline stays contended at every ratio.
    assert all(r[1] > 1.5 * r[2] for r in rows)
