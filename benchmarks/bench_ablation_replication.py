"""Ablation: replication factor r.

The paper fixes r = 3 (the HDFS default) everywhere.  This ablation sweeps
r and shows the mechanism behind Opass's win: more replicas mean more
locality edges, so the max-flow matching gets closer to full — while the
baseline's expected locality stays at r/m regardless of matching.
"""

from repro.analysis import expected_local_fraction
from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    locality_fraction,
    optimize_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 32


def sweep_replication(seed: int = 0):
    rows = []
    for r in (1, 2, 3, 5):
        fs = DistributedFileSystem(
            ClusterSpec.homogeneous(NODES), replication=r, seed=seed
        )
        data = single_data_workload(NODES, 10)
        fs.put_dataset(data)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = tasks_from_dataset(data)
        graph = graph_from_filesystem(fs, tasks, placement)
        base = locality_fraction(rank_interval_assignment(len(tasks), NODES), graph)
        result = optimize_single_data(graph, seed=seed)
        opass = locality_fraction(result.assignment, graph)
        rows.append((r, expected_local_fraction(r, NODES), base, opass,
                     result.full_matching, len(result.fallback_tasks)))
    return rows


def test_ablation_replication_factor(benchmark):
    rows = benchmark.pedantic(lambda: sweep_replication(seed=0), rounds=1, iterations=1)
    print("\n=== ablation: replication factor (32 nodes, 320 chunks) ===")
    print(format_table(
        ["r", "baseline E[local] (r/m)", "baseline measured", "opass measured",
         "full matching", "fallback tasks"],
        rows, float_fmt="{:.3f}",
    ))

    base_vals = [row[2] for row in rows]
    opass_vals = [row[3] for row in rows]
    # Baseline locality grows only linearly with r (r/m).
    for row in rows:
        assert abs(row[2] - row[1]) < 0.1
    # Opass locality grows with r and dominates baseline at every r.
    assert all(o >= b for o, b in zip(opass_vals, base_vals))
    assert opass_vals == sorted(opass_vals)
    # r=3 is enough for a (nearly) full matching at 10 chunks/process.
    assert rows[2][3] > 0.99
    # r=1 cannot reach full matching in general (no replica choice).
    assert rows[0][3] < rows[2][3]
