"""Extension bench: multi-query scans (shared input chunks).

Real mpiBLAST scans the whole fragment database once per query batch, so
with Q batches each fragment chunk feeds Q distinct tasks.  A chunk has
only r replicas, yet Q can exceed r — the matching must let replica
holders take several scans of their own chunks.  Opass handles this
out of the box (the flow network's quota edges admit multiple tasks per
process) and keeps every scan local; the rank-interval baseline is as
remote as ever, and its hot servers get hit Q times as hard.
"""

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    locality_fraction,
    multi_pass_scan_tasks,
    optimize_single_data,
    rank_interval_assignment,
)
from repro.dfs import ClusterSpec, DistributedFileSystem, uniform_dataset
from repro.simulate import ParallelReadRun, StaticSource
from repro.viz import format_table

NODES = 32
FRAGMENTS = 160


def run_pass_sweep(seed: int = 0):
    rows = []
    for passes in (1, 2, 4):
        fs = DistributedFileSystem(ClusterSpec.homogeneous(NODES), seed=seed)
        db = uniform_dataset("db", FRAGMENTS)
        fs.put_dataset(db)
        placement = ProcessPlacement.one_per_node(NODES)
        tasks = multi_pass_scan_tasks(db, passes)
        graph = graph_from_filesystem(fs, tasks, placement)

        base_a = rank_interval_assignment(len(tasks), NODES)
        base = ParallelReadRun(
            fs, placement, tasks, StaticSource(base_a), seed=seed
        ).run()
        fs.reset_counters()
        matched = optimize_single_data(graph, seed=seed)
        opass = ParallelReadRun(
            fs, placement, tasks, StaticSource(matched.assignment), seed=seed
        ).run()
        rows.append((
            passes,
            len(tasks),
            f"{base.locality_fraction:.0%}",
            base.io_stats()["avg"],
            f"{locality_fraction(matched.assignment, graph):.0%}",
            opass.io_stats()["avg"],
            matched.full_matching,
        ))
    return rows


def test_ext_multiquery_scans(benchmark):
    rows = benchmark.pedantic(lambda: run_pass_sweep(seed=0), rounds=1, iterations=1)
    print("\n=== multi-query scans: Q passes over 160 fragments, 32 nodes ===")
    print(format_table(
        ["passes", "tasks", "base locality", "base avg io",
         "opass locality", "opass avg io", "full matching"],
        rows,
    ))

    for passes, n, base_loc, base_avg, opass_loc, opass_avg, full in rows:
        # Opass keeps every scan local even when Q exceeds the replica
        # count (holders absorb several scans of their chunks).
        assert full
        assert opass_loc == "100%"
        assert opass_avg < 1.1
        assert base_avg > 2 * opass_avg
    # Baseline locality hovers around r/m at every pass count (it never
    # looked at the layout; variation across rows is sampling noise).
    for row in rows:
        assert float(row[2].rstrip("%")) / 100 < 0.2
