"""Extension bench: Opass on a shared cluster (§V-C's caveat, quantified).

"Clusters are usually shared by multiple applications.  Thus, Opass may
not greatly enhance the performance of parallel data requests due to the
adjustment of HDFS.  However, Opass allows the parallel data requests to
be served in an optimized way as long as the cluster nodes have the
capability to deliver data in the fashion of locality and balance."

We run the Fig-7 workload under increasing Poisson cross-traffic.  As the
paper predicts: absolute times degrade for everyone (the cluster is
busy), but Opass's reads stay local so its *relative* win persists — and
its degradation is purely fair-share, not scheduling-induced.
"""

from repro.core import (
    ProcessPlacement,
    graph_from_filesystem,
    optimize_single_data,
    rank_interval_assignment,
    tasks_from_dataset,
)
from repro.dfs import ClusterSpec, DistributedFileSystem
from repro.simulate import (
    BackgroundTraffic,
    ParallelReadRun,
    Simulation,
    StaticSource,
    cluster_resources,
)
from repro.viz import format_table
from repro.workloads import single_data_workload

NODES = 32
MB = 10**6


def run_under_noise(noise_rate: float, use_opass: bool, seed: int = 0):
    spec = ClusterSpec.homogeneous(NODES)
    fs = DistributedFileSystem(spec, seed=seed)
    data = single_data_workload(NODES, 10)
    fs.put_dataset(data)
    placement = ProcessPlacement.one_per_node(NODES)
    tasks = tasks_from_dataset(data)
    graph = graph_from_filesystem(fs, tasks, placement)
    if use_opass:
        assignment = optimize_single_data(graph, seed=seed).assignment
    else:
        assignment = rank_interval_assignment(len(tasks), NODES)

    sim = Simulation()
    sim.add_resources(cluster_resources(spec))
    run = ParallelReadRun(
        fs, placement, tasks, StaticSource(assignment), seed=seed, sim=sim
    )
    run.prepare()
    if noise_rate > 0:
        BackgroundTraffic(
            sim, spec,
            arrival_rate=noise_rate,
            transfer_size=32 * MB,
            duration=120.0,
            seed=seed + 1,
        ).prepare()
    sim.run()
    return run.collect()


def run_matrix(seed: int = 0):
    out = {}
    for rate in (0.0, 2.0, 6.0):
        for use_opass in (False, True):
            out[(rate, use_opass)] = run_under_noise(rate, use_opass, seed=seed)
    return out


def test_ext_shared_cluster(benchmark):
    out = benchmark.pedantic(lambda: run_matrix(seed=0), rounds=1, iterations=1)

    rows = []
    speedups = {}
    for rate in (0.0, 2.0, 6.0):
        base = out[(rate, False)]
        opass = out[(rate, True)]
        speedups[rate] = base.io_stats()["avg"] / opass.io_stats()["avg"]
        rows.append((
            f"{rate:.0f}/s x 32 MB",
            base.io_stats()["avg"], base.makespan,
            opass.io_stats()["avg"], opass.makespan,
            f"{speedups[rate]:.1f}x",
        ))
    print("\n=== shared cluster: Poisson cross-traffic (32 nodes) ===")
    print(format_table(
        ["background load", "base avg io", "base makespan",
         "opass avg io", "opass makespan", "speedup"],
        rows,
    ))

    # Everyone completes despite the noise.
    for result in out.values():
        assert result.tasks_completed == 320
    # Absolute degradation with load, for both (§V-C's 'may not greatly
    # enhance... due to the adjustment' — the cluster is simply busy).
    assert out[(6.0, True)].io_stats()["avg"] > out[(0.0, True)].io_stats()["avg"]
    assert out[(6.0, False)].io_stats()["avg"] > out[(0.0, False)].io_stats()["avg"]
    # But the relative win persists at every load level.
    for rate in (0.0, 2.0, 6.0):
        assert speedups[rate] > 1.5
    # And Opass's locality is noise-independent.
    assert out[(6.0, True)].locality_fraction == out[(0.0, True)].locality_fraction
